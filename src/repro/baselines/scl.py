"""SCL — supervised contrastive learning + domain-adversarial training
(after Kim et al., ICASSP 2024, adapted to tabular network telemetry).

A trunk network produces embeddings optimized with three objectives:
supervised contrastive loss over labeled samples (source + target few),
softmax cross-entropy through a linear head, and a domain classifier behind
a gradient-reversal layer.  Performs close to DANN in the paper (the
contrastive term adds little in the few-shot regime, §VI-B).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import DAMethod, fit_scaler
from repro.core.estimator import register_estimator
from repro.ml.preprocessing import one_hot
from repro.nn.layers import Dense, GradientReversal, ReLU
from repro.nn.losses import (
    SoftmaxCrossEntropy,
    softmax,
    supervised_contrastive_loss,
)
from repro.nn.network import Sequential, iterate_minibatches
from repro.nn.optimizers import Adam
from repro.utils.errors import ValidationError
from repro.utils.validation import check_is_fitted, check_random_state


@register_estimator("scl")
class SCL(DAMethod):
    """Supervised-contrastive + adversarial domain adaptation."""

    model_agnostic = False
    _fitted_attr = "trunk_"
    _state_arrays = ("classes_",)
    _state_networks = ("trunk_", "label_head_", "domain_head_")
    _state_estimators = ("scaler_",)

    def __init__(
        self,
        *,
        hidden_size: int = 128,
        embed_dim: int = 64,
        lambda_: float = 0.3,
        contrastive_weight: float = 0.5,
        temperature: float = 0.1,
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 1e-3,
        random_state=None,
    ) -> None:
        if contrastive_weight < 0:
            raise ValidationError("contrastive_weight must be non-negative")
        if temperature <= 0:
            raise ValidationError("temperature must be positive")
        self.hidden_size = hidden_size
        self.embed_dim = embed_dim
        self.lambda_ = lambda_
        self.contrastive_weight = contrastive_weight
        self.temperature = temperature
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.random_state = random_state
        self.trunk_: Sequential | None = None
        self.label_head_: Sequential | None = None
        self.domain_head_: Sequential | None = None
        self.classes_: np.ndarray | None = None

    def _extra_meta(self) -> dict:
        return {"n_features": int(self.scaler_.mean_.shape[0])}

    def _prepare_load(self, meta: dict, state: dict) -> None:
        # topology is a pure function of (n_features, classes, hyperparams);
        # weights are overwritten in place right after
        d = int(meta["n_features"])
        k = len(self.classes_)
        build_rng = np.random.default_rng(0)
        seed = lambda: int(build_rng.integers(0, 2**31 - 1))  # noqa: E731
        self.trunk_ = Sequential(
            [
                Dense(d, self.hidden_size, random_state=seed()),
                ReLU(),
                Dense(self.hidden_size, self.embed_dim, random_state=seed()),
            ]
        )
        self.label_head_ = Sequential(
            [Dense(self.embed_dim, k, init="glorot_uniform", random_state=seed())]
        )
        self.domain_head_ = Sequential(
            [
                GradientReversal(self.lambda_),
                Dense(self.embed_dim, self.hidden_size // 2, random_state=seed()),
                ReLU(),
                Dense(self.hidden_size // 2, 2, init="glorot_uniform", random_state=seed()),
            ]
        )

    def fit(self, X_source, y_source, X_target_few, y_target_few):
        X_source, y_source, X_target_few, y_target_few = self._validate(
            X_source, y_source, X_target_few, y_target_few
        )
        rng = check_random_state(self.random_state)
        self.scaler_ = fit_scaler(X_source)
        Xs = self.scaler_.transform(X_source)
        Xt = self.scaler_.transform(X_target_few)
        self.classes_, codes = np.unique(
            np.concatenate([y_source, y_target_few]), return_inverse=True
        )
        k = len(self.classes_)
        d = Xs.shape[1]
        n_s = Xs.shape[0]
        seed = lambda: int(rng.integers(0, 2**31 - 1))  # noqa: E731

        self.trunk_ = Sequential(
            [
                Dense(d, self.hidden_size, random_state=seed()),
                ReLU(),
                Dense(self.hidden_size, self.embed_dim, random_state=seed()),
            ]
        )
        self.label_head_ = Sequential(
            [Dense(self.embed_dim, k, init="glorot_uniform", random_state=seed())]
        )
        self.domain_head_ = Sequential(
            [
                GradientReversal(self.lambda_),
                Dense(self.embed_dim, self.hidden_size // 2, random_state=seed()),
                ReLU(),
                Dense(self.hidden_size // 2, 2, init="glorot_uniform", random_state=seed()),
            ]
        )
        layers = (
            self.trunk_.trainable_layers()
            + self.label_head_.trainable_layers()
            + self.domain_head_.trainable_layers()
        )
        opt = Adam(layers, lr=self.lr)
        ce = SoftmaxCrossEntropy()
        dom_ce = SoftmaxCrossEntropy()

        X_all = np.vstack([Xs, Xt])
        labels = np.concatenate([codes[:n_s], codes[n_s:]])
        domains = np.concatenate(
            [np.zeros(n_s, dtype=np.int64), np.ones(Xt.shape[0], dtype=np.int64)]
        )
        y_onehot = one_hot(labels, k)
        d_onehot = one_hot(domains, 2)
        batch = min(self.batch_size, X_all.shape[0])

        for _ in range(self.epochs):
            for idx in iterate_minibatches(X_all.shape[0], batch, rng):
                emb = self.trunk_.forward(X_all[idx], training=True)
                logits = self.label_head_.forward(emb, training=True)
                ce.forward(logits, y_onehot[idx])
                grad_emb = self.label_head_.backward(ce.backward())

                _, grad_scl = supervised_contrastive_loss(
                    emb, labels[idx], temperature=self.temperature
                )
                grad_emb = grad_emb + self.contrastive_weight * grad_scl

                d_logits = self.domain_head_.forward(emb, training=True)
                dom_ce.forward(d_logits, d_onehot[idx])
                grad_emb = grad_emb + self.domain_head_.backward(dom_ce.backward())

                self.trunk_.backward(grad_emb)
                opt.step()
                opt.zero_grad()
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "trunk_")
        emb = self.trunk_.forward(self.scaler_.transform(X), training=False)
        logits = self.label_head_.forward(emb, training=False)
        return self.classes_[np.argmax(logits, axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "trunk_")
        emb = self.trunk_.forward(self.scaler_.transform(X), training=False)
        return softmax(self.label_head_.forward(emb, training=False), axis=1)
