"""Few-shot learning baselines: Prototypical Networks and Matching Networks.

Both train an embedding trunk on the **source** domain with episodic
prototypical loss (Snell et al. 2017): each episode samples support and
query examples per class, builds class prototypes from support embeddings,
and classifies queries by (negative squared) distance to prototypes.

They differ at inference, following the paper's §VI-A descriptions:

- **ProtoNet** keeps source class prototypes and *updates* them with the
  few labeled target samples; test samples go to the nearest prototype.
- **MatchNet** embeds the few labeled target samples as a support set and
  classifies test samples by cosine-attention over that support set.
  (The trunk is trained with the same episodic objective — a standard
  simplification that preserves Matching Networks' inference behaviour.)
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import DAMethod, fit_scaler
from repro.core.estimator import Estimator, param_to_jsonable, register_estimator
from repro.nn.layers import Dense, ReLU
from repro.nn.losses import softmax
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam
from repro.utils.errors import ValidationError
from repro.utils.validation import check_is_fitted, check_random_state


@register_estimator("episodic_embedder")
class _EpisodicEmbedder(Estimator):
    """Embedding trunk trained with prototypical episodes on source data."""

    _fitted_attr = "trunk_"
    _state_networks = ("trunk_",)

    def __init__(
        self,
        *,
        hidden_size: int = 128,
        embed_dim: int = 64,
        episodes: int = 300,
        n_support: int = 5,
        n_query: int = 10,
        lr: float = 1e-3,
        random_state=None,
    ) -> None:
        if episodes < 1 or n_support < 1 or n_query < 1:
            raise ValidationError("episodes, n_support and n_query must be >= 1")
        self.hidden_size = hidden_size
        self.embed_dim = embed_dim
        self.episodes = episodes
        self.n_support = n_support
        self.n_query = n_query
        self.lr = lr
        self.random_state = random_state
        self.trunk_: Sequential | None = None

    def _extra_meta(self) -> dict:
        return {"n_features": int(self.trunk_.layers[0].params["W"].shape[0])}

    def _prepare_load(self, meta: dict, state: dict) -> None:
        # topology is a pure function of (n_features, hyperparams); weights
        # are overwritten in place right after
        d = int(meta["n_features"])
        build_rng = np.random.default_rng(0)
        seed = lambda: int(build_rng.integers(0, 2**31 - 1))  # noqa: E731
        self.trunk_ = Sequential(
            [
                Dense(d, self.hidden_size, random_state=seed()),
                ReLU(),
                Dense(self.hidden_size, self.embed_dim, random_state=seed()),
            ]
        )

    def fit(self, X: np.ndarray, y_codes: np.ndarray, n_classes: int) -> "_EpisodicEmbedder":
        rng = check_random_state(self.random_state)
        seed = lambda: int(rng.integers(0, 2**31 - 1))  # noqa: E731
        self.trunk_ = Sequential(
            [
                Dense(X.shape[1], self.hidden_size, random_state=seed()),
                ReLU(),
                Dense(self.hidden_size, self.embed_dim, random_state=seed()),
            ]
        )
        opt = Adam(self.trunk_.trainable_layers(), lr=self.lr)
        class_members = [np.where(y_codes == c)[0] for c in range(n_classes)]
        usable = [m for m in class_members if len(m) >= 2]
        if len(usable) < 2:
            raise ValidationError("episodic training needs >= 2 classes with >= 2 samples")

        for _ in range(self.episodes):
            support_idx, query_idx, query_labels = [], [], []
            sizes = []
            for c, members in enumerate(class_members):
                if len(members) < 2:
                    sizes.append(0)
                    continue
                m = min(len(members), self.n_support + self.n_query)
                chosen = rng.choice(members, size=m, replace=False)
                n_sup = min(self.n_support, m - 1)
                support_idx.extend(chosen[:n_sup].tolist())
                sizes.append(n_sup)
                for q in chosen[n_sup:]:
                    query_idx.append(int(q))
                    query_labels.append(c)
            if not query_idx:
                continue
            batch_idx = np.array(support_idx + query_idx)
            emb = self.trunk_.forward(X[batch_idx], training=True)
            n_sup_total = len(support_idx)
            z_sup, z_query = emb[:n_sup_total], emb[n_sup_total:]

            # prototypes per class with >=1 support sample
            protos, proto_classes, slices = [], [], []
            pos = 0
            for c, n_sup in enumerate(sizes):
                if n_sup == 0:
                    continue
                protos.append(z_sup[pos : pos + n_sup].mean(axis=0))
                proto_classes.append(c)
                slices.append((pos, pos + n_sup))
                pos += n_sup
            protos = np.array(protos)
            class_to_proto = {c: i for i, c in enumerate(proto_classes)}
            q_targets = np.array([class_to_proto[c] for c in query_labels])

            diff = z_query[:, None, :] - protos[None, :, :]  # (Q, P, D)
            logits = -np.sum(diff**2, axis=2)
            probs = softmax(logits, axis=1)
            onehot = np.zeros_like(probs)
            onehot[np.arange(len(q_targets)), q_targets] = 1.0
            g_logits = (probs - onehot) / len(q_targets)

            grad_q = -2.0 * np.einsum("qp,qpd->qd", g_logits, diff)
            grad_proto = 2.0 * np.einsum("qp,qpd->pd", g_logits, diff)
            grad_sup = np.zeros_like(z_sup)
            for p, (a, b) in enumerate(slices):
                grad_sup[a:b] = grad_proto[p] / (b - a)
            self.trunk_.backward(np.vstack([grad_sup, grad_q]))
            opt.step()
            opt.zero_grad()
        return self

    def embed(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "trunk_")
        # forward returns a reused workspace buffer — hand back a copy
        return self.trunk_.forward(X, training=False).copy()


@register_estimator("protonet")
class ProtoNet(DAMethod):
    """Prototypical networks with target-updated prototypes.

    ``target_blend`` controls how far source prototypes move toward the mean
    embedding of the few target samples of each class.
    """

    model_agnostic = False
    _fitted_attr = "prototypes_"
    _state_arrays = ("prototypes_", "classes_")
    _state_estimators = ("scaler_", "embedder")

    def get_params(self) -> dict:
        # constructor args are forwarded into the embedder, not stored
        return {
            "hidden_size": self.embedder.hidden_size,
            "embed_dim": self.embedder.embed_dim,
            "episodes": self.embedder.episodes,
            "target_blend": self.target_blend,
            "random_state": param_to_jsonable(self.embedder.random_state),
        }

    def __init__(
        self,
        *,
        hidden_size: int = 128,
        embed_dim: int = 64,
        episodes: int = 300,
        target_blend: float = 0.7,
        random_state=None,
    ) -> None:
        if not 0.0 <= target_blend <= 1.0:
            raise ValidationError("target_blend must be in [0, 1]")
        self.embedder = _EpisodicEmbedder(
            hidden_size=hidden_size,
            embed_dim=embed_dim,
            episodes=episodes,
            random_state=random_state,
        )
        self.target_blend = target_blend
        self.prototypes_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, X_source, y_source, X_target_few, y_target_few):
        X_source, y_source, X_target_few, y_target_few = self._validate(
            X_source, y_source, X_target_few, y_target_few
        )
        self.scaler_ = fit_scaler(X_source)
        Xs = self.scaler_.transform(X_source)
        Xt = self.scaler_.transform(X_target_few)
        self.classes_, codes_s = np.unique(y_source, return_inverse=True)
        self.embedder.fit(Xs, codes_s, len(self.classes_))
        emb_s = self.embedder.embed(Xs)
        emb_t = self.embedder.embed(Xt)
        protos = np.array(
            [emb_s[codes_s == c].mean(axis=0) for c in range(len(self.classes_))]
        )
        for c, label in enumerate(self.classes_):
            members = emb_t[y_target_few == label]
            if len(members):
                protos[c] = (
                    (1.0 - self.target_blend) * protos[c]
                    + self.target_blend * members.mean(axis=0)
                )
        self.prototypes_ = protos
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "prototypes_")
        emb = self.embedder.embed(self.scaler_.transform(X))
        d2 = np.sum((emb[:, None, :] - self.prototypes_[None, :, :]) ** 2, axis=2)
        return self.classes_[np.argmin(d2, axis=1)]


@register_estimator("matchnet")
class MatchNet(DAMethod):
    """Matching networks: cosine attention over the target support set."""

    model_agnostic = False
    _fitted_attr = "support_emb_"
    _state_arrays = ("support_emb_", "support_labels_", "classes_")
    _state_estimators = ("scaler_", "embedder")

    def get_params(self) -> dict:
        # constructor args are forwarded into the embedder, not stored
        return {
            "hidden_size": self.embedder.hidden_size,
            "embed_dim": self.embedder.embed_dim,
            "episodes": self.embedder.episodes,
            "temperature": self.temperature,
            "random_state": param_to_jsonable(self.embedder.random_state),
        }

    def __init__(
        self,
        *,
        hidden_size: int = 128,
        embed_dim: int = 64,
        episodes: int = 300,
        temperature: float = 0.1,
        random_state=None,
    ) -> None:
        if temperature <= 0:
            raise ValidationError("temperature must be positive")
        self.embedder = _EpisodicEmbedder(
            hidden_size=hidden_size,
            embed_dim=embed_dim,
            episodes=episodes,
            random_state=random_state,
        )
        self.temperature = temperature
        self.support_emb_: np.ndarray | None = None
        self.support_labels_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, X_source, y_source, X_target_few, y_target_few):
        X_source, y_source, X_target_few, y_target_few = self._validate(
            X_source, y_source, X_target_few, y_target_few
        )
        self.scaler_ = fit_scaler(X_source)
        Xs = self.scaler_.transform(X_source)
        Xt = self.scaler_.transform(X_target_few)
        self.classes_, codes_s = np.unique(y_source, return_inverse=True)
        self.embedder.fit(Xs, codes_s, len(self.classes_))
        emb_t = self.embedder.embed(Xt)
        norms = np.linalg.norm(emb_t, axis=1, keepdims=True) + 1e-12
        self.support_emb_ = emb_t / norms
        self.support_labels_ = y_target_few
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "support_emb_")
        emb = self.embedder.embed(self.scaler_.transform(X))
        emb = emb / (np.linalg.norm(emb, axis=1, keepdims=True) + 1e-12)
        attention = softmax(emb @ self.support_emb_.T / self.temperature, axis=1)
        votes = np.zeros((X.shape[0], len(self.classes_)))
        for c, label in enumerate(self.classes_):
            mask = self.support_labels_ == label
            if np.any(mask):
                votes[:, c] = attention[:, mask].sum(axis=1)
        return self.classes_[np.argmax(votes, axis=1)]
