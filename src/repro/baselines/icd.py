"""ICD — invariant conditional distributions (Magliacane et al., NeurIPS 2018),
adapted as the paper adapts it (§VI-A): use the joint-causal-inference style
invariance testing to split features into variant/invariant sets, then train
the downstream model on the invariant features only (on source + target few).

The adaptation keeps ICD's defining limitations in this setting: designed
for low-dimensional data with (conditionally) Gaussian mechanisms, its
invariance test reduces to comparing conditional *means* across domains —
Welch's t-test per feature with a conservative Bonferroni-corrected
threshold.  Mean-preserving drift (scale or variance changes) is therefore
invisible to it, so it flags substantially fewer variant features than FS —
exactly the behaviour the paper reports ("ICD identifies much less
domain-variant features than our FS method").
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.baselines.base import DAMethod, fit_scaler
from repro.core.estimator import register_estimator
from repro.utils.errors import ValidationError
from repro.utils.validation import check_is_fitted


def _mean_invariance_p(x_source: np.ndarray, x_target: np.ndarray) -> float:
    """Welch t-test p-value for a cross-domain mean shift in one feature."""
    if x_source.std() == 0 and x_target.std() == 0:
        return 1.0 if np.isclose(x_source.mean(), x_target.mean()) else 0.0
    try:
        p = stats.ttest_ind(x_source, x_target, equal_var=False).pvalue
    except ValueError:
        return 1.0
    return float(p) if np.isfinite(p) else 1.0


@register_estimator("icd")
class ICD(DAMethod):
    """Marginal-invariance feature screening + invariant-feature training."""

    _fitted_attr = "model_"
    _state_arrays = ("invariant_indices_", "variant_indices_")
    _state_estimators = ("scaler_", "model_")

    def __init__(
        self,
        model_factory,
        *,
        alpha: float = 0.05,
        bonferroni: bool = True,
    ) -> None:
        if not callable(model_factory):
            raise ValidationError("model_factory must be callable")
        if not 0.0 < alpha < 1.0:
            raise ValidationError("alpha must be in (0, 1)")
        self.model_factory = model_factory
        self.alpha = alpha
        self.bonferroni = bonferroni
        self.model_ = None
        self.invariant_indices_: np.ndarray | None = None
        self.variant_indices_: np.ndarray | None = None

    def fit(self, X_source, y_source, X_target_few, y_target_few):
        X_source, y_source, X_target_few, y_target_few = self._validate(
            X_source, y_source, X_target_few, y_target_few
        )
        self.scaler_ = fit_scaler(X_source)
        Xs = self.scaler_.transform(X_source)
        Xt = self.scaler_.transform(X_target_few)
        d = Xs.shape[1]
        threshold = self.alpha / d if self.bonferroni else self.alpha
        p_values = np.array(
            [_mean_invariance_p(Xs[:, j], Xt[:, j]) for j in range(d)]
        )
        self.variant_indices_ = np.where(p_values < threshold)[0]
        self.invariant_indices_ = np.where(p_values >= threshold)[0]
        if len(self.invariant_indices_) == 0:
            raise ValidationError("ICD flagged every feature as variant")
        X = np.vstack([Xs, Xt])[:, self.invariant_indices_]
        y = np.concatenate([y_source, y_target_few])
        self.model_ = self.model_factory()
        self.model_.fit(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "model_")
        Xp = self.scaler_.transform(X)[:, self.invariant_indices_]
        return self.model_.predict(Xp)

    @property
    def n_variant_(self) -> int:
        check_is_fitted(self, "variant_indices_")
        return int(len(self.variant_indices_))
