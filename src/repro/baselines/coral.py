"""CORAL — correlation alignment (Sun, Feng & Saenko, AAAI 2016).

Aligns the second-order statistics of the two domains: source features are
whitened with the source covariance and re-colored with the target
covariance, then the downstream model is trained on the transformed source
(plus the raw target few-shot samples) and applied to raw target data.

In the few-shot regime the target covariance is estimated from a handful of
samples, so a shrinkage estimator (convex combination with its diagonal) is
used — without it the re-coloring matrix is rank-deficient and the method
collapses entirely, rather than degrading gracefully as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import DAMethod, fit_scaler
from repro.core.estimator import register_estimator
from repro.utils.errors import ValidationError
from repro.utils.validation import check_is_fitted


def _shrunk_covariance(X: np.ndarray, shrinkage: float, eps: float = 1e-3) -> np.ndarray:
    """Covariance shrunk toward its diagonal, ridge-regularized."""
    n, d = X.shape
    if n < 2:
        return np.eye(d)
    cov = np.cov(X, rowvar=False)
    cov = np.atleast_2d(cov)
    diag = np.diag(np.diag(cov))
    return (1.0 - shrinkage) * cov + shrinkage * diag + eps * np.eye(d)


def coral_transform(
    X_source: np.ndarray,
    X_target: np.ndarray,
    *,
    shrinkage: float = 0.5,
) -> np.ndarray:
    """Re-color source samples to match the target covariance.

    Implements ``X_s · C_s^{-1/2} · C_t^{1/2}`` via eigendecompositions.
    """
    if X_source.shape[1] != X_target.shape[1]:
        raise ValidationError("source and target feature counts differ")
    if not 0.0 <= shrinkage <= 1.0:
        raise ValidationError("shrinkage must be in [0, 1]")
    cov_s = _shrunk_covariance(X_source, shrinkage)
    cov_t = _shrunk_covariance(X_target, shrinkage)

    def mat_power(C: np.ndarray, power: float) -> np.ndarray:
        vals, vecs = np.linalg.eigh(C)
        vals = np.clip(vals, 1e-10, None)
        return vecs @ np.diag(vals**power) @ vecs.T

    whiten = mat_power(cov_s, -0.5)
    recolor = mat_power(cov_t, 0.5)
    return X_source @ whiten @ recolor


@register_estimator("coral")
class CORAL(DAMethod):
    """CORAL domain adaptation wrapped as a :class:`DAMethod`."""

    _fitted_attr = "model_"
    _state_estimators = ("scaler_", "model_")

    def __init__(self, model_factory, *, shrinkage: float = 0.5) -> None:
        if not callable(model_factory):
            raise ValidationError("model_factory must be callable")
        self.model_factory = model_factory
        self.shrinkage = shrinkage
        self.model_ = None

    def fit(self, X_source, y_source, X_target_few, y_target_few):
        X_source, y_source, X_target_few, y_target_few = self._validate(
            X_source, y_source, X_target_few, y_target_few
        )
        self.scaler_ = fit_scaler(X_source)
        Xs = self.scaler_.transform(X_source)
        Xt = self.scaler_.transform(X_target_few)
        Xs_aligned = coral_transform(Xs, Xt, shrinkage=self.shrinkage)
        X = np.vstack([Xs_aligned, Xt])
        y = np.concatenate([y_source, y_target_few])
        self.model_ = self.model_factory()
        self.model_.fit(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "model_")
        return self.model_.predict(self.scaler_.transform(X))
