"""Performance benchmark harness behind ``repro bench`` (§VI-D).

The paper's running-time table is dominated by the CI tests of FS
discovery.  This module measures exactly that cost, twice:

- **before** — :func:`reference_discover`, a frozen copy of the original
  per-feature scalar loop (one :func:`regression_invariance_test` call per
  subset), kept here so the baseline stays measurable after the hot path
  moved to :class:`repro.causal.engine.CIEngine`;
- **after** — :class:`repro.core.feature_separation.FeatureSeparator` on the
  batched/cached engine path, with optional ``n_jobs`` workers.

Both runs share the same data, candidates and early-break semantics, so the
speedup is apples-to-apples and the record carries an ``equivalent`` flag
checking the results actually agree.  GAN training and per-sample inference
round out the §VI-D decomposition.  Records are merged into a seed-keyed
JSON file (``BENCH_fs.json`` by default) so repeated runs across datasets,
presets and seeds accumulate rather than clobber.
"""

from __future__ import annotations

import os
import tempfile
from itertools import combinations

import numpy as np

from repro.causal.ci_tests import regression_invariance_test
from repro.causal.fnode import FNodeDiscovery, FNodeResult
from repro.causal.warm import WarmState
from repro.core.config import FSConfig, ReconstructionConfig
from repro.core.feature_separation import FeatureSeparator
from repro.core.reconstruction import VariantReconstructor
from repro.experiments.bench_registry import (
    BenchRecord,
    bench_key,
    get_suite,
    write_bench_record as _registry_write,
)
from repro.experiments.presets import ExperimentPreset, get_preset
from repro.experiments.runner import make_benchmark
from repro.ml.preprocessing import MinMaxScaler
from repro.obs.logging import get_logger
from repro.obs.trace import Stopwatch, get_tracer

#: schema tag stamped into every benchmark file this module writes
#: (owned by the suite registry; kept as a module constant for callers)
BENCH_SCHEMA = get_suite("fs").schema


def reference_discover(
    X_source, X_target, *, config: FSConfig | None = None
) -> FNodeResult:
    """The pre-engine FS discovery loop, frozen as the timing baseline.

    One scalar :func:`regression_invariance_test` per (feature, subset),
    with the same candidate sets and first-clearing-subset early break as
    :class:`FNodeDiscovery` — only the batching/caching differs, so timing
    this against the engine isolates the optimization being benchmarked.
    """
    config = config or FSConfig()
    disc = FNodeDiscovery(
        alpha=config.alpha,
        max_parents=config.max_parents,
        max_cond_size=config.max_cond_size,
        min_correlation=config.min_correlation,
    )
    X_source = np.ascontiguousarray(X_source, dtype=np.float64)
    X_target = np.ascontiguousarray(X_target, dtype=np.float64)
    d = X_source.shape[1]
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = np.corrcoef(X_source, rowvar=False)
    if d == 1:
        corr = np.array([[1.0]])
    p_values = np.zeros(d)
    parent_sets: list[tuple[int, ...]] = []
    n_tests = 0
    for j in range(d):
        candidates = disc._candidates(corr, j)
        best_p, separating = 0.0, ()
        for size in range(0, config.max_cond_size + 1):
            cleared = False
            for subset in combinations(candidates, size):
                cols = list(subset)
                z_s = X_source[:, cols] if cols else None
                z_t = X_target[:, cols] if cols else None
                p = regression_invariance_test(
                    X_source[:, j], X_target[:, j], z_s, z_t
                )
                n_tests += 1
                if p > best_p:
                    best_p, separating = p, subset
                if p >= config.alpha:
                    cleared = True
                    break
            if cleared:
                break
        p_values[j] = best_p
        parent_sets.append(separating)
    variant = np.where(p_values < config.alpha)[0]
    invariant = np.where(p_values >= config.alpha)[0]
    return FNodeResult(
        variant_indices=variant,
        invariant_indices=invariant,
        p_values=p_values,
        parent_sets=parent_sets,
        n_tests=n_tests,
    )


def write_bench_record(record, path: str, *, schema: str = BENCH_SCHEMA) -> None:
    """Merge ``record`` into the JSON file at ``path`` (created if absent).

    Thin wrapper over :func:`repro.experiments.bench_registry.write_bench_record`
    defaulting to the FS suite's schema; kept here because the other bench
    modules historically import the helper from this module.
    """
    _registry_write(record, path, schema=schema)


def run_bench(
    dataset: str = "5gc",
    *,
    preset: str | ExperimentPreset | None = None,
    shots: int = 10,
    n_jobs: int = 1,
    fs_rounds: int = 3,
    include_gan: bool = True,
    n_inference_samples: int = 64,
    random_state: int = 0,
    out: str | None = None,
) -> dict:
    """Benchmark FS discovery (reference vs engine), GAN training, inference.

    FS timings are the best of ``fs_rounds`` runs per side (the standard
    min-of-rounds estimator — one slow round from scheduler noise should not
    move a speedup ratio).  Returns the record; when ``out`` is given, also
    merges it into that benchmark file under its :func:`bench_key`.
    """
    preset = preset if isinstance(preset, ExperimentPreset) else get_preset(preset)
    tracer = get_tracer()
    logger = get_logger("repro.experiments.bench")
    bench = make_benchmark(dataset, preset, random_state=random_state)
    X_few, _, X_test, _ = bench.few_shot_split(shots, random_state=random_state)
    scaler = MinMaxScaler().fit(bench.X_source)
    Xs = scaler.transform(bench.X_source)
    Xt_few = scaler.transform(X_few)
    fs_config = FSConfig(n_jobs=n_jobs)

    fs_rounds = max(1, fs_rounds)
    ref_seconds = float("inf")
    with tracer.span("bench.fs_reference", dataset=dataset, rounds=fs_rounds):
        for _ in range(fs_rounds):
            with Stopwatch() as sw:
                ref = reference_discover(Xs, Xt_few, config=fs_config)
            ref_seconds = min(ref_seconds, sw.seconds)
    logger.info(
        "reference loop: %.2f s (%d CI tests)", ref_seconds, ref.n_tests
    )

    eng_seconds = float("inf")
    with tracer.span("bench.fs_engine", n_jobs=n_jobs, rounds=fs_rounds):
        for _ in range(fs_rounds):
            with Stopwatch() as sw:
                sep = FeatureSeparator(fs_config).fit(Xs, Xt_few)
            eng_seconds = min(eng_seconds, sw.seconds)
    res = sep.result_
    logger.info("batched engine: %.2f s (%d CI tests)", eng_seconds, res.n_tests)

    equivalent = bool(
        np.array_equal(ref.variant_indices, res.variant_indices)
        and np.allclose(ref.p_values, res.p_values, rtol=1e-9, atol=1e-12)
        and ref.parent_sets == res.parent_sets
        and ref.n_tests == res.n_tests
    )

    gan_seconds = None
    per_sample = None
    if include_gan:
        X_inv, X_var = sep.split(Xs)
        rec = VariantReconstructor(
            ReconstructionConfig(
                strategy="gan",
                noise_dim=preset.gan_noise_dim,
                hidden_size=preset.gan_hidden,
                epochs=preset.gan_epochs,
            ),
            random_state=random_state,
        )
        with tracer.span("bench.gan", epochs=preset.gan_epochs), Stopwatch() as sw:
            rec.fit(X_inv, X_var, bench.y_source)
        gan_seconds = sw.seconds
        Xt = scaler.transform(X_test[:n_inference_samples])
        inv_block, _ = sep.split(Xt)
        with tracer.span(
            "bench.inference", n_samples=len(inv_block)
        ), Stopwatch() as sw:
            for row in inv_block:  # one sample at a time, as in online inference
                rec.reconstruct(row[None, :])
        per_sample = sw.seconds / len(inv_block)

    record = BenchRecord(
        suite="fs",
        dataset=dataset,
        preset=preset.name,
        seed=random_state,
        before={
            "fs_seconds": ref_seconds,
            "n_ci_tests": int(ref.n_tests),
            "n_variant": int(ref.n_variant),
        },
        after={
            "fs_seconds": eng_seconds,
            "n_ci_tests": int(res.n_tests),
            "n_variant": int(res.n_variant),
        },
        speedup=ref_seconds / max(eng_seconds, 1e-9),
        equivalent=equivalent,
        extras={
            "shots": shots,
            "n_jobs": n_jobs,
            "fs_rounds": fs_rounds,
            "n_features": bench.n_features,
            "gan_train_seconds": gan_seconds,
            "inference_seconds_per_sample": per_sample,
        },
    ).to_dict()
    if out:
        write_bench_record(record, out)
        logger.info("benchmark record written to %s", out)
    return record


# ---------------------------------------------------------------------------
# wide-scale FS benchmark (ROADMAP item 4): synthetic drift pairs at the
# paper's 442-feature operating point and beyond

#: features per causal group in the wide generator (1 drifted parent,
#: 5 children separated by conditioning on it, 2 independent noise columns)
_WIDE_GROUP = 8


def make_wide_pair(
    n_features: int,
    *,
    n_source: int = 480,
    n_target: int = 120,
    drift: float = 1.2,
    random_state: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic (source, target) matrices of exactly ``n_features`` columns.

    The 5GC generator's width is tied to its infra/KPI group structure, so
    it cannot hit arbitrary widths; this generator exists to measure FS
    *scaling* with exact width control.  Features come in groups of
    :data:`_WIDE_GROUP` with the three causal roles discovery must tell
    apart: a **parent** whose mechanism drifts in the target (an
    intervention target — no conditioning subset clears it), five
    **children** of that parent (marginally drifted, separated by
    conditioning on the parent), and two independent **noise** columns
    (cleared by the marginal sweep).  A trailing partial group is filled
    with noise columns so any width is reachable.
    """
    if n_features < 1:
        raise ValueError("n_features must be >= 1")
    rng = np.random.default_rng(random_state)

    def domain(n_rows: int, drifted: bool) -> np.ndarray:
        X = np.empty((n_rows, n_features))
        for start in range(0, n_features, _WIDE_GROUP):
            width = min(_WIDE_GROUP, n_features - start)
            parent = rng.standard_normal(n_rows)
            if drifted:
                parent = parent + drift  # soft intervention: mean shift
            cols = [parent]
            for child in range(1, max(width - 2, 1)):
                # fixed cross-domain mechanism: invariant given the parent.
                # the unit noise keeps siblings from jointly reconstructing
                # the parent, which would spuriously clear the true target
                noise = rng.standard_normal(n_rows)
                weight = 0.75 + 0.05 * (child % 3)
                cols.append(weight * parent + noise)
            while len(cols) < width:
                cols.append(rng.standard_normal(n_rows))
            X[:, start : start + width] = np.column_stack(cols[:width])
        return X

    return domain(n_source, drifted=False), domain(n_target, drifted=True)


def run_bench_wide(
    widths: tuple[int, ...] = (442, 1024),
    *,
    n_jobs: int = -1,
    fs_rounds: int = 2,
    prune_k: int = 3,
    stats_dtype: str = "float32",
    n_source: int = 480,
    n_target: int = 120,
    random_state: int = 0,
    out: str | None = None,
) -> list[dict]:
    """FS scaling curve: pre-PR engine vs the wide-scale fast path.

    For each width, **before** runs the frozen PR-2 configuration (multi-RHS
    ridge solves, pickled worker fan-out, no pruning, float64) and **after**
    runs the wide-scale path (per-feature solves, shared-memory fan-out,
    exact-mode pruning at ``prune_k``, ``stats_dtype`` statistics with
    float64 borderline verification).  Both sides see the same matrices and
    ``n_jobs``; ``equivalent`` asserts identical variant decisions, which
    exact-mode pruning and verified float32 guarantee by construction.
    Returns one record per width; with ``out``, each is merged under
    ``wide/<width>/seed<seed>``.
    """
    tracer = get_tracer()
    logger = get_logger("repro.experiments.bench")
    fs_rounds = max(1, fs_rounds)
    records: list[dict] = []
    for width in widths:
        Xs, Xt = make_wide_pair(
            int(width),
            n_source=n_source,
            n_target=n_target,
            random_state=random_state,
        )
        before_disc = FNodeDiscovery(
            n_jobs=n_jobs, multi_rhs=True, use_shared_memory=False
        )
        after_disc = FNodeDiscovery(
            n_jobs=n_jobs,
            prune_k=prune_k,
            prune_exact=True,
            stats_dtype=stats_dtype,
            use_shared_memory=True,
        )
        before_seconds = after_seconds = float("inf")
        with tracer.span("bench.fs_wide", width=int(width), rounds=fs_rounds):
            for _ in range(fs_rounds):
                with Stopwatch() as sw:
                    before = before_disc.discover(Xs, Xt)
                before_seconds = min(before_seconds, sw.seconds)
                with Stopwatch() as sw:
                    after = after_disc.discover(Xs, Xt)
                after_seconds = min(after_seconds, sw.seconds)
        equivalent = bool(
            np.array_equal(before.variant_indices, after.variant_indices)
            and after.coverage == 1.0
        )
        speedup = before_seconds / max(after_seconds, 1e-9)
        logger.info(
            "wide %d: %.2fs -> %.2fs (%.2fx, equivalent=%s)",
            width, before_seconds, after_seconds, speedup, equivalent,
        )
        record = BenchRecord(
            suite="fs",
            dataset="wide",
            preset=str(int(width)),
            seed=random_state,
            before={
                "fs_seconds": before_seconds,
                "n_ci_tests": int(before.n_tests),
                "n_variant": int(before.n_variant),
            },
            after={
                "fs_seconds": after_seconds,
                "n_ci_tests": int(after.n_tests),
                "n_variant": int(after.n_variant),
            },
            speedup=speedup,
            equivalent=equivalent,
            extras={
                "n_features": int(width),
                "n_jobs": n_jobs,
                "fs_rounds": fs_rounds,
                "n_source": n_source,
                "n_target": n_target,
                "before_mode": "multi_rhs+pickle+float64",
                "after_mode": (
                    f"per_feature+shm+prune_k={prune_k}+{stats_dtype}"
                ),
                "coverage": float(after.coverage),
            },
        ).to_dict()
        records.append(record)
        if out:
            write_bench_record(record, out)
            logger.info("benchmark record written to %s", out)
    return records


# ---------------------------------------------------------------------------
# warm-start re-discovery benchmark: cold discovery vs rediscover() from the
# previous run's WarmState after a few-shot target update


def _clone_warm(warm: WarmState) -> WarmState:
    """Deep, isolated copy of a warm state (serialization roundtrip).

    Each timing round must start from the *same* warm state; reusing the
    live object would let round N+1 profit from cache entries round N
    added.  Residuals are included so the clone carries everything the
    producing run accumulated.
    """
    return WarmState.from_state(warm.state_dict(include_residuals=True))


def run_bench_warm(
    widths: tuple[int, ...] = (442,),
    *,
    n_jobs: int = -1,
    fs_rounds: int = 2,
    warm_mode: str = "confirm",
    prune_k: int = 3,
    max_parents: int = 6,
    max_cond_size: int = 3,
    min_correlation: float = 0.1,
    stats_dtype: str = "float32",
    n_source: int = 480,
    n_target: int = 120,
    n_prior: int = 96,
    random_state: int = 0,
    out: str | None = None,
) -> list[dict]:
    """Warm-start FS re-discovery benchmark (drift-event refit scenario).

    Models the production loop: a run at ``n_prior`` target rows produces a
    :class:`~repro.causal.warm.WarmState` (decision priors + the persistent
    CI-statistics cache), then new few-shot rows arrive and discovery
    re-runs on ``n_target`` rows.  **before** is a cold :meth:`discover` on
    the updated pool; **after** is :meth:`rediscover` from the prior state
    under ``warm_mode``.  Both sides run the identical engine configuration
    (pruning, dtype, fan-out), so the ratio isolates exactly what warm
    start buys.

    Every record also carries untimed equivalence evidence against the cold
    variant set: ``exact``/``confirm`` modes, serial / process-pool /
    shared-memory fan-outs, and a save→load artifact roundtrip of the warm
    state (the daemon-triggered warm-refit path); ``equivalent`` is the
    conjunction.  With ``out``, records merge under
    ``warm/<width>/seed<seed>``.
    """
    from repro.core.artifacts import load_artifact, save_artifact
    from repro.core.config import FSConfig
    from repro.core.feature_separation import FeatureSeparator

    tracer = get_tracer()
    logger = get_logger("repro.experiments.bench")
    fs_rounds = max(1, fs_rounds)
    engine_kwargs = dict(
        prune_k=prune_k,
        prune_exact=True,
        max_parents=max_parents,
        max_cond_size=max_cond_size,
        min_correlation=min_correlation,
        stats_dtype=stats_dtype,
        use_shared_memory=True,
    )
    records: list[dict] = []
    for width in widths:
        Xs, Xt = make_wide_pair(
            int(width),
            n_source=n_source,
            n_target=n_target,
            random_state=random_state,
        )
        if not 0 < n_prior < n_target:
            raise ValueError("n_prior must be in (0, n_target)")
        Xt_prior = Xt[:n_prior]

        # the producing run: discovery at the prior shot budget (untimed).
        # Serial on purpose — pool workers keep their cache entries local,
        # so only a serial run accumulates the complete CI-statistics cache
        # the warm state is supposed to carry.
        prior_disc = FNodeDiscovery(n_jobs=1, **engine_kwargs)
        prior_disc.discover(Xs, Xt_prior)
        warm0 = prior_disc.warm_state_

        before_seconds = after_seconds = float("inf")
        cold = after = None
        with tracer.span(
            "bench.fs_warm", width=int(width), rounds=fs_rounds, mode=warm_mode
        ):
            for _ in range(fs_rounds):
                cold_disc = FNodeDiscovery(n_jobs=n_jobs, **engine_kwargs)
                with Stopwatch() as sw:
                    cold = cold_disc.discover(Xs, Xt)
                before_seconds = min(before_seconds, sw.seconds)
                warm_disc = FNodeDiscovery(n_jobs=n_jobs, **engine_kwargs)
                warm_in = _clone_warm(warm0)
                with Stopwatch() as sw:
                    after = warm_disc.rediscover(Xs, Xt, warm_in, mode=warm_mode)
                after_seconds = min(after_seconds, sw.seconds)

        def variant_equal(result) -> bool:
            return bool(
                np.array_equal(cold.variant_indices, result.variant_indices)
            )

        # untimed equivalence evidence: both modes, every fan-out path
        checks = {}
        checks["confirm_equal"] = variant_equal(after)
        for name, kwargs in (
            ("exact_equal", {"n_jobs": 1, "mode": "exact"}),
            ("serial_equal", {"n_jobs": 1}),
            ("pool_equal", {"n_jobs": 2, "use_shared_memory": False}),
            ("shm_equal", {"n_jobs": 2, "use_shared_memory": True}),
        ):
            opts = dict(engine_kwargs)
            opts["use_shared_memory"] = kwargs.get(
                "use_shared_memory", opts["use_shared_memory"]
            )
            disc = FNodeDiscovery(n_jobs=kwargs["n_jobs"], **opts)
            res = disc.rediscover(
                Xs, Xt, _clone_warm(warm0), mode=kwargs.get("mode", warm_mode)
            )
            checks[name] = variant_equal(res)

        # artifact roundtrip: the warm state must survive the v2 bundle and
        # still drive an equivalent warm refit (the daemon restart path)
        sep = FeatureSeparator(
            FSConfig(
                n_jobs=1,
                prune_k=prune_k,
                max_parents=max_parents,
                max_cond_size=max_cond_size,
                min_correlation=min_correlation,
                stats_dtype=stats_dtype,
                warm_mode=warm_mode,
            )
        ).fit(Xs, Xt_prior)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "separator.npz")
            save_artifact(sep, path)
            restored = load_artifact(path).estimator
        rt_disc = FNodeDiscovery(n_jobs=1, **engine_kwargs)
        rt = rt_disc.rediscover(Xs, Xt, restored.warm_state_, mode=warm_mode)
        checks["roundtrip_equal"] = variant_equal(rt)

        equivalent = bool(
            all(checks.values())
            and cold.coverage == 1.0
            and after.coverage == 1.0
        )
        speedup = before_seconds / max(after_seconds, 1e-9)
        logger.info(
            "warm %d: %.2fs -> %.2fs (%.2fx, tests %d -> %d, equivalent=%s)",
            width, before_seconds, after_seconds, speedup,
            cold.n_tests, after.n_tests, equivalent,
        )
        record = BenchRecord(
            suite="fs",
            dataset="warm",
            preset=str(int(width)),
            seed=random_state,
            before={
                "fs_seconds": before_seconds,
                "n_ci_tests": int(cold.n_tests),
                "n_variant": int(cold.n_variant),
            },
            after={
                "fs_seconds": after_seconds,
                "n_ci_tests": int(after.n_tests),
                "n_variant": int(after.n_variant),
            },
            speedup=speedup,
            equivalent=equivalent,
            extras={
                "n_features": int(width),
                "n_jobs": n_jobs,
                "fs_rounds": fs_rounds,
                "n_source": n_source,
                "n_target": n_target,
                "n_prior": n_prior,
                "n_new_rows": int(n_target - n_prior),
                "max_parents": int(max_parents),
                "max_cond_size": int(max_cond_size),
                "min_correlation": float(min_correlation),
                "before_mode": f"cold+prune_k={prune_k}+{stats_dtype}",
                "after_mode": (
                    f"warm-{warm_mode}+prune_k={prune_k}+{stats_dtype}"
                ),
                "coverage": float(after.coverage),
                "n_cache_entries": (
                    int(warm0.cache.n_entries) if warm0.cache is not None else 0
                ),
                **checks,
            },
        ).to_dict()
        records.append(record)
        if out:
            write_bench_record(record, out)
            logger.info("benchmark record written to %s", out)
    return records


def cli_bench(args, preset, out: str) -> str:
    """CLI adapter for ``repro bench --suite fs`` (the registry hook)."""
    from repro.experiments.reporting import (
        format_bench,
        format_bench_warm,
        format_bench_wide,
    )

    if getattr(args, "warm", False):
        widths = tuple(int(w) for w in args.widths.split(",") if w.strip())
        records = run_bench_warm(
            widths,
            n_jobs=args.n_jobs,
            fs_rounds=args.rounds,
            random_state=args.seed,
            out=out,
        )
        return format_bench_warm(records)
    if getattr(args, "wide", False):
        widths = tuple(int(w) for w in args.widths.split(",") if w.strip())
        records = run_bench_wide(
            widths,
            n_jobs=args.n_jobs,
            fs_rounds=args.rounds,
            random_state=args.seed,
            out=out,
        )
        return format_bench_wide(records)
    record = run_bench(
        args.dataset,
        preset=preset,
        shots=args.shots,
        n_jobs=args.n_jobs,
        include_gan=not args.skip_gan,
        random_state=args.seed,
        out=out,
    )
    return format_bench(record)


def check_fs_record(record: dict) -> list[str]:
    """FS-suite equivalence oracle (the registry hook).

    Beyond the shared record shape: both sides must carry positive FS
    wall-clock timings and have run the same number of CI tests.  In
    pruned wide mode (flagged by ``after_mode``) the counts may drift a
    little — pruning reshapes the adaptive test schedule, so ties break
    differently — but the pruned engine running *materially more* tests
    than the reference means pruning is not pruning.  Warm records
    (``after_mode`` contains ``warm``) must do strictly no more work than
    the cold side and must carry every equivalence check
    :func:`run_bench_warm` records (per-mode, per-fan-out-path and the
    artifact roundtrip) as ``True``.
    """
    problems = []
    for side in ("before", "after"):
        seconds = record[side].get("fs_seconds")
        if not isinstance(seconds, (int, float)) or seconds <= 0:
            problems.append(f"{side}.fs_seconds must be > 0, got {seconds!r}")
    before_tests = record["before"].get("n_ci_tests")
    after_tests = record["after"].get("n_ci_tests")
    after_mode = str(record.get("after_mode", ""))
    pruned = "prune" in after_mode
    warm = "warm" in after_mode
    if warm:
        if (
            before_tests is not None
            and after_tests is not None
            and after_tests > before_tests
        ):
            problems.append(
                f"warm re-discovery ran more tests than cold: "
                f"{after_tests} > {before_tests}"
            )
        for key in (
            "confirm_equal",
            "exact_equal",
            "serial_equal",
            "pool_equal",
            "shm_equal",
            "roundtrip_equal",
        ):
            if record.get(key) is not True:
                problems.append(
                    f"warm equivalence check {key} must be true, "
                    f"got {record.get(key)!r}"
                )
    elif before_tests is not None and after_tests is not None:
        if not pruned and before_tests != after_tests:
            problems.append(
                f"CI test counts diverge without pruning: "
                f"{before_tests} vs {after_tests}"
            )
        if pruned and after_tests > before_tests * 1.01 + 2:
            problems.append(
                f"pruned engine ran materially more tests than the "
                f"reference: {after_tests} > {before_tests}"
            )
    return problems
