"""Closed-loop adaptation scenario driver and the ``adapt`` bench suite.

:func:`run_adapt_scenario` replays a synthetic traffic stream with a *known*
drift onset through a live :class:`~repro.adapt.controller.AdaptationController`
and measures the loop's end-to-end figures of merit:

- **detection latency** — batches between the first drifted batch and the
  drift alarm (window-filling lag of the PSI tracker);
- **shots-to-refit** — post-alarm rows accumulated before re-discovery
  fires (the paper's few-shot budget in the loop);
- **warm vs cold re-discovery cost** — the in-loop warm
  :meth:`~repro.core.pipeline.FSGANPipeline.rediscover_fs` wall time
  against a cold :class:`~repro.core.feature_separation.FeatureSeparator`
  fit on exactly the same shot matrix and engine configuration;
- **alarm-to-promotion wall time** — alarm batch to the lineage pointer
  flip, covering re-discovery, cGAN refit and the shadow agreement window.

The traffic generator reuses :func:`~repro.experiments.bench.make_wide_pair`
(the wide-scale FS benchmark's synthetic family), so the 442-feature preset
of ``repro bench --suite fs --warm`` is reachable *inside the loop* and the
warm-vs-cold ratio is directly comparable to the standalone warm benchmark.

Drift-tracker calibration: ``psi_max`` is a max-statistic over all
features, so it inflates with both small windows (a 32-row window shows
up to ~2.7 on same-distribution traffic) and width (442 features reach
~0.95 where 48 stay under ~0.75).  The scenario defaults —
``min_rows=192`` / ``window_rows=256`` / ``n_bins=8`` / 64-row batches /
``psi_threshold=1.5`` — keep same-distribution traffic below ~1.0 at
every tested width while the injected mean shift climbs past 1.8 within
a few window fills, so the threshold has margin on both sides and the
measured detection latency is the tracker's genuine window-filling lag.

``repro bench --suite adapt`` (and ``repro adapt run``) emit one
seed-keyed record per width into ``BENCH_adapt.json`` via the shared
:mod:`~repro.experiments.bench_registry` machinery.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.experiments.bench import make_wide_pair
from repro.experiments.bench_registry import (
    BenchRecord,
    get_suite,
    write_bench_record,
)
from repro.obs.logging import get_logger
from repro.obs.trace import get_tracer
from repro.utils.errors import ValidationError

__all__ = [
    "SCHEDULES",
    "check_adapt_record",
    "cli_bench_adapt",
    "format_bench_adapt",
    "make_drift_schedule",
    "run_adapt_scenario",
    "run_bench_adapt",
]

SCHEDULES = ("abrupt", "gradual")


def make_drift_schedule(
    width: int,
    *,
    schedule: str = "abrupt",
    n_batches: int = 32,
    batch_rows: int = 64,
    onset_batch: int = 10,
    ramp_batches: int = 4,
    n_source: int = 480,
    n_prior: int = 96,
    random_state: int = 0,
) -> dict:
    """Training matrices plus a batch stream with a known drift onset.

    Returns a dict with ``X_source`` / ``y_source`` / ``X_target_prior``
    (the generation-0 training inputs), ``batches`` (the traffic stream:
    ``n_batches`` matrices of ``batch_rows`` rows each) and the schedule
    metadata.  Batches ``0 .. onset_batch-1`` are drawn from the source
    distribution; from ``onset_batch`` on, rows come from the drifted
    target distribution — all of them at once (``abrupt``) or linearly
    ramping over ``ramp_batches`` batches (``gradual``).  Traffic rows are
    generated from an independent seed, so the stream never replays
    training rows.
    """
    if schedule not in SCHEDULES:
        raise ValidationError(
            f"schedule must be one of {SCHEDULES}, got {schedule!r}"
        )
    if not 1 <= onset_batch < n_batches:
        raise ValidationError(
            f"onset_batch must be in [1, n_batches), got {onset_batch}"
        )
    if ramp_batches < 1:
        raise ValidationError("ramp_batches must be >= 1")
    X_source, X_target_prior = make_wide_pair(
        int(width), n_source=n_source, n_target=n_prior,
        random_state=random_state,
    )
    # deterministic binary labels off the first feature: the downstream
    # model's quality is irrelevant here, only its probability stream is
    y_source = (X_source[:, 0] > np.median(X_source[:, 0])).astype(np.int64)
    rows = n_batches * batch_rows
    pre_pool, post_pool = make_wide_pair(
        int(width), n_source=rows, n_target=rows,
        random_state=random_state + 1,
    )
    rng = np.random.default_rng(random_state + 2)
    batches = []
    for t in range(n_batches):
        lo = t * batch_rows
        if t < onset_batch:
            fraction = 0.0
        elif schedule == "abrupt":
            fraction = 1.0
        else:
            fraction = min(1.0, (t - onset_batch + 1) / ramp_batches)
        k = int(round(fraction * batch_rows))
        batch = np.vstack([
            post_pool[lo:lo + k],
            pre_pool[lo + k:lo + batch_rows],
        ])
        batches.append(batch[rng.permutation(batch_rows)])
    return {
        "width": int(width),
        "schedule": schedule,
        "onset_batch": int(onset_batch),
        "batch_rows": int(batch_rows),
        "n_batches": int(n_batches),
        "ramp_batches": int(ramp_batches),
        "X_source": X_source,
        "y_source": y_source,
        "X_target_prior": X_target_prior,
        "batches": batches,
    }


def _scenario_pipeline(n_jobs: int, epochs: int, random_state: int):
    """An FSGANPipeline in the warm-bench 442-preset engine configuration."""
    from repro.core import FSGANPipeline, ReconstructionConfig
    from repro.core.config import FSConfig
    from repro.ml import MLPClassifier

    return FSGANPipeline(
        lambda: MLPClassifier(
            hidden_sizes=(16,), epochs=8, random_state=random_state
        ),
        fs_config=FSConfig(
            max_parents=6,
            max_cond_size=3,
            min_correlation=0.1,
            prune_k=3,
            prune_exact=True,
            stats_dtype="float32",
            use_shared_memory=True,
            warm_mode="confirm",
            n_jobs=n_jobs,
        ),
        reconstruction_config=ReconstructionConfig(
            strategy="gan", epochs=epochs, noise_dim=2, hidden_size=8,
        ),
        random_state=random_state,
    )


def run_adapt_scenario(
    width: int = 48,
    *,
    schedule: str = "abrupt",
    n_batches: int = 32,
    batch_rows: int = 64,
    onset_batch: int = 10,
    ramp_batches: int = 4,
    min_shots: int = 64,
    n_prior: int = 96,
    psi_threshold: float = 1.5,
    epochs: int = 2,
    cold_rounds: int = 1,
    n_jobs: int = 1,
    random_state: int = 0,
    root=None,
) -> dict:
    """One closed-loop lifecycle pass over a known-onset drift stream.

    Fits generation 0 on the schedule's source + prior-shot matrices,
    seeds an :class:`~repro.adapt.lineage.ArtifactLineage` under ``root``
    (a temporary directory when None) and replays the stream through a
    standalone :class:`~repro.adapt.controller.AdaptationController` until
    the candidate is promoted (or the stream ends).  After promotion, cold
    discovery is re-run ``cold_rounds`` times on the identical shot matrix
    to price what warm start bought; variant-set equality between the two
    is asserted into ``variant_equivalent``.
    """
    import tempfile

    from repro.adapt import AdaptationConfig, AdaptationController, ShadowPolicy
    from repro.adapt.lineage import ArtifactLineage
    from repro.core.feature_separation import FeatureSeparator

    logger = get_logger("repro.experiments.drift_schedule")
    data = make_drift_schedule(
        width,
        schedule=schedule,
        n_batches=n_batches,
        batch_rows=batch_rows,
        onset_batch=onset_batch,
        ramp_batches=ramp_batches,
        n_prior=n_prior,
        random_state=random_state,
    )
    with get_tracer().span(
        "adapt.scenario", width=int(width), schedule=schedule
    ):
        pipeline = _scenario_pipeline(n_jobs, epochs, random_state)
        t0 = time.perf_counter()
        pipeline.fit(data["X_source"], data["y_source"],
                     data["X_target_prior"])
        fit_seconds = time.perf_counter() - t0

        tmp = None
        if root is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-adapt-")
            root = tmp.name
        try:
            lineage = ArtifactLineage(root)
            config = AdaptationConfig(
                min_shots=min_shots,
                shot_capacity=max(256, min_shots),
                drift_options={
                    "min_rows": 192,
                    "window_rows": 256,
                    "n_bins": 8,
                    "psi_threshold": psi_threshold,
                    "name": "adapt-scenario",
                },
                # the refit candidate legitimately diverges from the
                # incumbent (that is the point); promote on *bounded*
                # divergence instead of near-identity
                policy=ShadowPolicy(
                    agreement_batches=2,
                    max_disagreement=0.35,
                    abort_disagreement=1.0,
                    max_batches=16,
                ),
                subscribe_alarms=False,
            )
            with AdaptationController(
                pipeline, lineage, "scenario", config
            ) as controller:
                promoted_at = None
                for t, batch in enumerate(data["batches"]):
                    state = controller.observe(batch)
                    if state == "PROMOTED":
                        promoted_at = t + 1
                        break
                status = controller.status()
                timeline = [
                    {"state": e["state"], "batch": e["batch"]}
                    for e in controller.timeline
                ]
                shots = controller.last_shots_
                alarm_batch = controller.alarm_batch
                timings = dict(controller.timings)
                variant_diff = controller.variant_diff
            history = [
                (v.generation, v.lifecycle_state)
                for v in lineage.history("scenario")
            ]
        finally:
            if tmp is not None:
                tmp.cleanup()

    promoted = promoted_at is not None
    result = {
        "width": int(width),
        "schedule": schedule,
        "batch_rows": int(batch_rows),
        "onset_batch": int(onset_batch) + 1,  # 1-based, like alarm_batch
        "alarm_batch": alarm_batch,
        "detection_latency_batches": (
            alarm_batch - (onset_batch + 1) if alarm_batch is not None else None
        ),
        "shots_to_refit": (
            int(shots.shape[0]) if shots is not None else None
        ),
        "fit_seconds": fit_seconds,
        "rediscover_warm_seconds": timings.get("rediscover_seconds"),
        "rediscover_warm": timings.get("rediscover_warm", False),
        "refit_seconds": timings.get("refit_seconds"),
        "alarm_to_promotion_seconds": timings.get("alarm_to_promotion_seconds"),
        "promoted": promoted,
        "promoted_at_batch": promoted_at,
        "final_state": status["state"],
        "generation": status["generation"],
        "variant_diff": variant_diff,
        "timeline": timeline,
        "lineage_history": history,
    }

    if promoted and shots is not None:
        # cold re-discovery on the identical shot matrix prices the warm
        # start; run on the pipeline's cached scaled source so both sides
        # see byte-identical inputs
        Xs_scaled, _ = pipeline._fit_cache
        shots_scaled = pipeline.scaler_.transform(shots)
        cold_config = replace(pipeline.fs_config, warm_mode="off")
        cold_seconds = float("inf")
        cold_sep = None
        for _ in range(max(1, cold_rounds)):
            sep = FeatureSeparator(cold_config)
            t0 = time.perf_counter()
            sep.fit(Xs_scaled, shots_scaled)
            cold_seconds = min(cold_seconds, time.perf_counter() - t0)
            cold_sep = sep
        warm_variant = set(
            int(j) for j in pipeline.separator_.variant_indices_
        )
        cold_variant = set(int(j) for j in cold_sep.variant_indices_)
        result["rediscover_cold_seconds"] = cold_seconds
        result["warm_speedup"] = cold_seconds / max(
            result["rediscover_warm_seconds"] or 0.0, 1e-9
        )
        result["variant_equivalent"] = warm_variant == cold_variant
        result["warm_cache_stats"] = pipeline.separator_.cache_stats_
        logger.info(
            "adapt scenario width=%d: alarm at batch %s (onset %d), "
            "promoted gen %d, warm rediscover %.3fs vs cold %.3fs (%.2fx)",
            width, alarm_batch, onset_batch + 1, result["generation"],
            result["rediscover_warm_seconds"], cold_seconds,
            result["warm_speedup"],
        )
    return result


# ---------------------------------------------------------------------------
# the "adapt" bench suite


def run_bench_adapt(
    widths: tuple[int, ...] = (442,),
    *,
    schedule: str = "abrupt",
    cold_rounds: int = 2,
    min_shots: int = 64,
    epochs: int = 2,
    n_jobs: int = 1,
    random_state: int = 0,
    out: str | None = None,
) -> list[dict]:
    """One adaptation-lifecycle benchmark record per width.

    ``before`` is the cold re-discovery cost on the loop's shot matrix,
    ``after`` the in-loop warm re-discovery; ``speedup`` is their ratio
    and ``equivalent`` asserts the warm variant set matched cold **and**
    the lifecycle actually completed (alarm → promotion).  Records merge
    under ``wide/<width>/seed<seed>`` in ``BENCH_adapt.json``.
    """
    suite = get_suite("adapt")
    records = []
    for width in widths:
        scenario = run_adapt_scenario(
            int(width),
            schedule=schedule,
            min_shots=min_shots,
            cold_rounds=cold_rounds,
            epochs=epochs,
            n_jobs=n_jobs,
            random_state=random_state,
        )
        if not scenario["promoted"]:
            raise ValidationError(
                f"adapt bench at width {width}: lifecycle did not reach "
                f"promotion (final state {scenario['final_state']!r})"
            )
        record = BenchRecord(
            suite="adapt",
            dataset="wide",
            preset=str(int(width)),
            seed=random_state,
            before={
                "rediscover_seconds": scenario["rediscover_cold_seconds"],
                "mode": "cold",
            },
            after={
                "rediscover_seconds": scenario["rediscover_warm_seconds"],
                "mode": "confirm",
            },
            speedup=scenario["warm_speedup"],
            equivalent=bool(
                scenario["variant_equivalent"] and scenario["promoted"]
            ),
            extras={
                "n_features": int(width),
                "schedule": scenario["schedule"],
                "onset_batch": scenario["onset_batch"],
                "alarm_batch": scenario["alarm_batch"],
                "detection_latency_batches": (
                    scenario["detection_latency_batches"]
                ),
                "shots_to_refit": scenario["shots_to_refit"],
                "batch_rows": scenario["batch_rows"],
                "alarm_to_promotion_seconds": (
                    scenario["alarm_to_promotion_seconds"]
                ),
                "refit_seconds": scenario["refit_seconds"],
                "promoted_generation": scenario["generation"],
                "variant_added": len(scenario["variant_diff"]["added"]),
                "variant_removed": len(scenario["variant_diff"]["removed"]),
                "cold_rounds": int(max(1, cold_rounds)),
                "n_jobs": n_jobs,
            },
        ).to_dict()
        records.append(record)
        if out:
            write_bench_record(record, out, schema=suite.schema)
    return records


def format_bench_adapt(records: list[dict]) -> str:
    """Human-readable report of :func:`run_bench_adapt` records."""
    lines = [
        "Closed-loop adaptation benchmark (alarm -> rediscover -> refit "
        "-> shadow -> promote)",
        "",
        f"{'width':>6}  {'detect(b)':>9}  {'shots':>5}  {'cold(s)':>8}  "
        f"{'warm(s)':>8}  {'speedup':>7}  {'alarm->promo(s)':>15}  equal",
    ]
    for r in records:
        lines.append(
            f"{r['n_features']:>6}  {r['detection_latency_batches']:>9}  "
            f"{r['shots_to_refit']:>5}  "
            f"{r['before']['rediscover_seconds']:>8.3f}  "
            f"{r['after']['rediscover_seconds']:>8.3f}  "
            f"{r['speedup']:>6.2f}x  "
            f"{r['alarm_to_promotion_seconds']:>15.3f}  "
            f"{'yes' if r['equivalent'] else 'NO'}"
        )
    return "\n".join(lines)


def cli_bench_adapt(args, preset, out: str) -> str:
    """CLI adapter hook: ``repro bench --suite adapt``."""
    widths = tuple(int(w) for w in str(args.widths).split(",") if w)
    records = run_bench_adapt(
        widths,
        cold_rounds=max(1, args.rounds),
        n_jobs=args.n_jobs,
        random_state=args.seed,
        out=out,
    )
    return format_bench_adapt(records)


def check_adapt_record(record: dict) -> list[str]:
    """Suite oracle: internal-consistency problems of one adapt record."""
    problems = []
    for side, label in ((record.get("before", {}), "before"),
                        (record.get("after", {}), "after")):
        seconds = side.get("rediscover_seconds")
        if not isinstance(seconds, (int, float)) or not seconds > 0:
            problems.append(
                f"{label}.rediscover_seconds must be positive, got {seconds!r}"
            )
    if record.get("before", {}).get("mode") != "cold":
        problems.append("before.mode must be 'cold'")
    latency = record.get("detection_latency_batches")
    if not isinstance(latency, int) or latency < 0:
        problems.append(
            f"detection_latency_batches must be a non-negative int, "
            f"got {latency!r}"
        )
    onset, alarm = record.get("onset_batch"), record.get("alarm_batch")
    if (isinstance(onset, int) and isinstance(alarm, int)
            and alarm < onset):
        problems.append(
            f"alarm_batch {alarm} precedes onset_batch {onset} "
            f"(false-positive detection)"
        )
    wall = record.get("alarm_to_promotion_seconds")
    if not isinstance(wall, (int, float)) or not wall > 0:
        problems.append(
            f"alarm_to_promotion_seconds must be positive, got {wall!r}"
        )
    shots = record.get("shots_to_refit")
    if not isinstance(shots, int) or shots < 1:
        problems.append(f"shots_to_refit must be a positive int, got {shots!r}")
    generation = record.get("promoted_generation")
    if not isinstance(generation, int) or generation < 1:
        problems.append(
            f"promoted_generation must be >= 1, got {generation!r}"
        )
    return problems
