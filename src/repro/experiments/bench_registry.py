"""One registry for every benchmark suite (ROADMAP item 5).

Before this module each suite (FS, NN, serve) carried its own ad-hoc
schema constant, record layout and file-merge helper.  The registry pins
them down in one place:

- :class:`BenchSuite` — the per-suite contract: schema tag, default
  record file, which *ratio* fields the CI regression gate compares
  (wall-clock seconds are machine-dependent; before/after ratios are not),
  plus two lazily-resolved hooks: ``cli`` (the suite's CLI adapter, so
  ``repro bench --suite X`` dispatches through this table instead of
  hand-rolled branches) and ``oracle`` (the suite's record-equivalence
  checker, shared by CI validation and tests).  Hooks are dotted
  ``module:function`` strings resolved on first use, keeping this module
  import-cycle-free.
- :class:`BenchRecord` — the shared record shape every suite emits: a
  ``dataset/preset/seedN`` key, ``before``/``after`` measurement dicts,
  the headline ``speedup`` ratio and the ``equivalent`` flag asserting the
  optimized path reproduced the reference results.  Suite-specific detail
  rides in ``extras`` and serializes flat, so the on-disk layout of the
  committed ``BENCH_*.json`` files is unchanged.
- :func:`bench_key` / :func:`write_bench_record` — the seed-keyed JSON
  merge used by every suite (moved here from ``bench.py``; re-exported
  there for compatibility).

``benchmarks/perf/check_regression.py`` imports
:data:`REGRESSION_RATIO_FIELDS` from here, so adding a gated ratio to a
suite is a one-line registry edit.
"""

from __future__ import annotations

import importlib
import json
import os
from dataclasses import dataclass, field

#: (label, path into the record) for every ratio the regression gate
#: compares; a path absent from a record is skipped, never an error
REGRESSION_RATIO_FIELDS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("speedup", ("speedup",)),
    ("serve.speedup", ("serve", "speedup")),
    ("float32.speedup_vs_float64", ("float32", "speedup_vs_float64")),
)


def _resolve(dotted: str):
    """Import a ``module:function`` hook reference."""
    module_name, _, attr = dotted.partition(":")
    if not module_name or not attr:
        raise ValueError(f"hook reference must be 'module:function', got {dotted!r}")
    return getattr(importlib.import_module(module_name), attr)


@dataclass(frozen=True)
class BenchSuite:
    """Registry entry for one benchmark suite."""

    name: str
    schema: str
    default_out: str
    description: str
    ratio_fields: tuple[tuple[str, tuple[str, ...]], ...] = REGRESSION_RATIO_FIELDS
    #: dotted ``module:function`` of the suite's CLI adapter
    #: (``fn(args, preset, out) -> str`` returning the report to print)
    cli: str | None = None
    #: dotted ``module:function`` of the suite's equivalence oracle
    #: (``fn(record) -> list[str]`` of problems; empty = record is sound)
    oracle: str | None = None

    def run_cli(self, args, preset, out: str) -> str:
        """Run the suite through its CLI adapter hook."""
        if self.cli is None:
            raise ValueError(f"suite {self.name!r} has no CLI adapter")
        return _resolve(self.cli)(args, preset, out)

    def check_record(self, record: dict) -> list[str]:
        """Problems with a record: shared shape first, then the oracle."""
        problems = check_record_shape(record)
        if not problems and self.oracle is not None:
            problems = list(_resolve(self.oracle)(record))
        return problems


def check_record_shape(record: dict) -> list[str]:
    """Shared-schema problems of one bench record (empty list = fine)."""
    problems = []
    for key in ("dataset", "preset", "seed", "before", "after", "speedup"):
        if key not in record:
            problems.append(f"missing field {key!r}")
    if problems:
        return problems
    if not isinstance(record["before"], dict) or not isinstance(
            record["after"], dict):
        problems.append("before/after must be measurement dicts")
    speedup = record["speedup"]
    if not isinstance(speedup, (int, float)) or not speedup > 0:
        problems.append(f"speedup must be a positive number, got {speedup!r}")
    if record.get("equivalent") is not True:
        problems.append("record does not assert equivalence")
    return problems


SUITES: dict[str, BenchSuite] = {
    suite.name: suite
    for suite in (
        BenchSuite(
            name="fs",
            schema="repro.bench.fs/v1",
            default_out="BENCH_fs.json",
            description="FS discovery: reference scalar loop vs batched CI engine",
            cli="repro.experiments.bench:cli_bench",
            oracle="repro.experiments.bench:check_fs_record",
        ),
        BenchSuite(
            name="nn",
            schema="repro.bench.nn/v1",
            default_out="BENCH_nn.json",
            description="cGAN training/serving: frozen reference vs fused engine",
            cli="repro.experiments.bench_nn:cli_bench_nn",
            oracle="repro.experiments.bench_nn:check_nn_record",
        ),
        BenchSuite(
            name="serve",
            schema="repro.bench.serve/v1",
            default_out="BENCH_serve.json",
            description="pipeline serving: naive predict_proba vs compiled "
            "plan (one-shot), or the micro-batching daemon under sustained "
            "mixed-tenant load (--sustained)",
            cli="repro.experiments.bench_serve:cli_bench_serve",
            oracle="repro.experiments.bench_serve:check_serve_record",
        ),
        BenchSuite(
            name="adapt",
            schema="repro.bench.adapt/v1",
            default_out="BENCH_adapt.json",
            description="closed-loop adaptation lifecycle: cold FS "
            "re-discovery vs the in-loop warm rediscover, plus detection "
            "latency and alarm-to-promotion wall time",
            cli="repro.experiments.drift_schedule:cli_bench_adapt",
            oracle="repro.experiments.drift_schedule:check_adapt_record",
        ),
    )
}


def get_suite(name: str) -> BenchSuite:
    if name not in SUITES:
        raise KeyError(f"unknown bench suite {name!r}; known: {sorted(SUITES)}")
    return SUITES[name]


def suite_for_schema(schema: str) -> BenchSuite | None:
    """The registered suite owning ``schema``, or None for foreign files."""
    for suite in SUITES.values():
        if suite.schema == schema:
            return suite
    return None


@dataclass
class BenchRecord:
    """The record shape shared by every suite.

    ``extras`` carries suite-specific measurements (GAN timings, serve
    telemetry, scaling metadata, …) and serializes *flat* alongside the
    shared fields, so :meth:`to_dict` output is byte-compatible with the
    pre-registry per-suite layouts.
    """

    suite: str
    dataset: str
    preset: str
    seed: int
    before: dict
    after: dict
    speedup: float
    equivalent: bool
    extras: dict = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.dataset}/{self.preset}/seed{self.seed}"

    def to_dict(self) -> dict:
        doc = {
            "dataset": self.dataset,
            "preset": self.preset,
            "seed": self.seed,
            "before": self.before,
            "after": self.after,
            "speedup": self.speedup,
            "equivalent": self.equivalent,
        }
        for key, value in self.extras.items():
            doc.setdefault(key, value)
        return doc

    @classmethod
    def from_dict(cls, suite: str, record: dict) -> "BenchRecord":
        shared = ("dataset", "preset", "seed", "before", "after", "speedup",
                  "equivalent")
        return cls(
            suite=suite,
            dataset=str(record.get("dataset", "")),
            preset=str(record.get("preset", "")),
            seed=int(record.get("seed", 0)),
            before=dict(record.get("before", {})),
            after=dict(record.get("after", {})),
            speedup=float(record.get("speedup", 0.0)),
            equivalent=bool(record.get("equivalent", False)),
            extras={k: v for k, v in record.items() if k not in shared},
        )


def bench_key(record: dict | BenchRecord) -> str:
    """The seed-keyed slot a record occupies in its benchmark file."""
    if isinstance(record, BenchRecord):
        return record.key
    return f"{record['dataset']}/{record['preset']}/seed{record['seed']}"


def write_bench_record(
    record: dict | BenchRecord, path: str, *, schema: str
) -> None:
    """Merge ``record`` into the JSON file at ``path`` (created if absent).

    ``schema`` tags the file; an existing file with a different schema is
    rewritten from scratch rather than mixed (each suite owns its file).
    """
    if isinstance(record, BenchRecord):
        record = record.to_dict()
    doc = {"schema": schema, "records": {}}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as fh:
                existing = json.load(fh)
            if isinstance(existing, dict) and existing.get("schema") == schema:
                doc["records"].update(existing.get("records", {}))
        except (ValueError, OSError):
            pass  # unreadable file: rewrite from scratch
    doc["records"][bench_key(record)] = record
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


__all__ = [
    "REGRESSION_RATIO_FIELDS",
    "BenchRecord",
    "BenchSuite",
    "SUITES",
    "bench_key",
    "check_record_shape",
    "get_suite",
    "suite_for_schema",
    "write_bench_record",
]
