"""One registry for every benchmark suite (ROADMAP item 5).

Before this module each suite (FS, NN, serve) carried its own ad-hoc
schema constant, record layout and file-merge helper.  The registry pins
them down in one place:

- :class:`BenchSuite` — the per-suite contract: schema tag, default
  record file, and which *ratio* fields the CI regression gate compares
  (wall-clock seconds are machine-dependent; before/after ratios are not).
- :class:`BenchRecord` — the shared record shape every suite emits: a
  ``dataset/preset/seedN`` key, ``before``/``after`` measurement dicts,
  the headline ``speedup`` ratio and the ``equivalent`` flag asserting the
  optimized path reproduced the reference results.  Suite-specific detail
  rides in ``extras`` and serializes flat, so the on-disk layout of the
  committed ``BENCH_*.json`` files is unchanged.
- :func:`bench_key` / :func:`write_bench_record` — the seed-keyed JSON
  merge used by every suite (moved here from ``bench.py``; re-exported
  there for compatibility).

``benchmarks/perf/check_regression.py`` imports
:data:`REGRESSION_RATIO_FIELDS` from here, so adding a gated ratio to a
suite is a one-line registry edit.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

#: (label, path into the record) for every ratio the regression gate
#: compares; a path absent from a record is skipped, never an error
REGRESSION_RATIO_FIELDS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("speedup", ("speedup",)),
    ("serve.speedup", ("serve", "speedup")),
    ("float32.speedup_vs_float64", ("float32", "speedup_vs_float64")),
)


@dataclass(frozen=True)
class BenchSuite:
    """Registry entry for one benchmark suite."""

    name: str
    schema: str
    default_out: str
    description: str
    ratio_fields: tuple[tuple[str, tuple[str, ...]], ...] = REGRESSION_RATIO_FIELDS


SUITES: dict[str, BenchSuite] = {
    suite.name: suite
    for suite in (
        BenchSuite(
            name="fs",
            schema="repro.bench.fs/v1",
            default_out="BENCH_fs.json",
            description="FS discovery: reference scalar loop vs batched CI engine",
        ),
        BenchSuite(
            name="nn",
            schema="repro.bench.nn/v1",
            default_out="BENCH_nn.json",
            description="cGAN training/serving: frozen reference vs fused engine",
        ),
        BenchSuite(
            name="serve",
            schema="repro.bench.serve/v1",
            default_out="BENCH_serve.json",
            description="pipeline serving: naive predict_proba vs compiled plan",
        ),
    )
}


def get_suite(name: str) -> BenchSuite:
    if name not in SUITES:
        raise KeyError(f"unknown bench suite {name!r}; known: {sorted(SUITES)}")
    return SUITES[name]


def suite_for_schema(schema: str) -> BenchSuite | None:
    """The registered suite owning ``schema``, or None for foreign files."""
    for suite in SUITES.values():
        if suite.schema == schema:
            return suite
    return None


@dataclass
class BenchRecord:
    """The record shape shared by every suite.

    ``extras`` carries suite-specific measurements (GAN timings, serve
    telemetry, scaling metadata, …) and serializes *flat* alongside the
    shared fields, so :meth:`to_dict` output is byte-compatible with the
    pre-registry per-suite layouts.
    """

    suite: str
    dataset: str
    preset: str
    seed: int
    before: dict
    after: dict
    speedup: float
    equivalent: bool
    extras: dict = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.dataset}/{self.preset}/seed{self.seed}"

    def to_dict(self) -> dict:
        doc = {
            "dataset": self.dataset,
            "preset": self.preset,
            "seed": self.seed,
            "before": self.before,
            "after": self.after,
            "speedup": self.speedup,
            "equivalent": self.equivalent,
        }
        for key, value in self.extras.items():
            doc.setdefault(key, value)
        return doc

    @classmethod
    def from_dict(cls, suite: str, record: dict) -> "BenchRecord":
        shared = ("dataset", "preset", "seed", "before", "after", "speedup",
                  "equivalent")
        return cls(
            suite=suite,
            dataset=str(record.get("dataset", "")),
            preset=str(record.get("preset", "")),
            seed=int(record.get("seed", 0)),
            before=dict(record.get("before", {})),
            after=dict(record.get("after", {})),
            speedup=float(record.get("speedup", 0.0)),
            equivalent=bool(record.get("equivalent", False)),
            extras={k: v for k, v in record.items() if k not in shared},
        )


def bench_key(record: dict | BenchRecord) -> str:
    """The seed-keyed slot a record occupies in its benchmark file."""
    if isinstance(record, BenchRecord):
        return record.key
    return f"{record['dataset']}/{record['preset']}/seed{record['seed']}"


def write_bench_record(
    record: dict | BenchRecord, path: str, *, schema: str
) -> None:
    """Merge ``record`` into the JSON file at ``path`` (created if absent).

    ``schema`` tags the file; an existing file with a different schema is
    rewritten from scratch rather than mixed (each suite owns its file).
    """
    if isinstance(record, BenchRecord):
        record = record.to_dict()
    doc = {"schema": schema, "records": {}}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as fh:
                existing = json.load(fh)
            if isinstance(existing, dict) and existing.get("schema") == schema:
                doc["records"].update(existing.get("records", {}))
        except (ValueError, OSError):
            pass  # unreadable file: rewrite from scratch
    doc["records"][bench_key(record)] = record
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


__all__ = [
    "REGRESSION_RATIO_FIELDS",
    "BenchRecord",
    "BenchSuite",
    "SUITES",
    "bench_key",
    "get_suite",
    "suite_for_schema",
    "write_bench_record",
]
