"""Downstream model factories for the four Table I classifiers."""

from __future__ import annotations

from repro.experiments.presets import ExperimentPreset
from repro.ml.gradient_boosting import GradientBoostingClassifier
from repro.ml.mlp import MLPClassifier
from repro.ml.random_forest import RandomForestClassifier
from repro.ml.tabnet import TNetClassifier

MODEL_NAMES = ("TNet", "MLP", "RF", "XGB")


def model_factories(preset: ExperimentPreset, *, random_state: int = 0) -> dict:
    """Factories for the four downstream network-management models.

    Every call of a factory yields a *fresh* model so repeated fits never
    share state; ``random_state`` pins weight initialization per cell.
    """
    p = preset.models
    return {
        "TNet": lambda: TNetClassifier(
            epochs=p.tnet_epochs, random_state=random_state
        ),
        "MLP": lambda: MLPClassifier(
            epochs=p.mlp_epochs, random_state=random_state
        ),
        "RF": lambda: RandomForestClassifier(
            n_estimators=p.rf_estimators,
            max_depth=p.rf_max_depth,
            random_state=random_state,
        ),
        "XGB": lambda: GradientBoostingClassifier(
            n_estimators=p.xgb_estimators,
            max_depth=p.xgb_max_depth,
            max_features=p.xgb_max_features,
            random_state=random_state,
        ),
    }
