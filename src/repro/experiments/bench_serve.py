"""Serving benchmark behind ``repro bench --suite serve``.

Measures the compiled :class:`~repro.serve.plan.InferencePlan` against the
naive serve path (``FSGANPipeline.predict_proba``, which allocates fresh
stage arrays per batch) on the same fitted pipeline, same batch, same RNG
state.  The record also carries the equivalence evidence: the plan is
compiled from the pipeline's RNG state *before* either side scores, so its
float64 probabilities must match the pipeline's bit for bit
(``max_abs_diff == 0.0``).

Records are merged into a seed-keyed JSON file (``BENCH_serve.json`` by
default) with the same layout as the FS / NN benchmark files.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ReconstructionConfig
from repro.core.pipeline import FSGANPipeline
from repro.experiments.bench_registry import (
    BenchRecord,
    bench_key,
    get_suite,
    write_bench_record,
)
from repro.experiments.models import model_factories
from repro.experiments.presets import ExperimentPreset, get_preset
from repro.experiments.runner import make_benchmark
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.obs.trace import Stopwatch, get_tracer

#: schema tag stamped into every benchmark file this module writes
#: (owned by the suite registry; kept as a module constant for callers)
BENCH_SERVE_SCHEMA = get_suite("serve").schema


def bench_serve_record(
    pipeline: FSGANPipeline,
    X_batch: np.ndarray,
    *,
    rounds: int = 3,
    n_draws: int = 1,
) -> dict:
    """Time compiled-plan vs naive serving on a fitted pipeline.

    The parity check comes first, from a single aligned RNG state; the
    timing loop then takes the best of ``rounds`` runs per side (RNG
    advancement does not affect wall clock).
    """
    rounds = max(1, rounds)
    plan = pipeline.compile(n_draws=n_draws)
    # parity: plan cloned the RNG at state S; the pipeline consumes from S too
    expected = pipeline.predict_proba(X_batch, n_draws=n_draws)
    got = plan.predict_proba(X_batch)
    max_abs_diff = float(np.max(np.abs(expected - got))) if expected.size else 0.0

    naive_seconds = plan_seconds = float("inf")
    with get_tracer().span("bench_serve.time", rounds=rounds, n_draws=n_draws):
        for _ in range(rounds):
            with Stopwatch() as sw:
                pipeline.predict_proba(X_batch, n_draws=n_draws)
            naive_seconds = min(naive_seconds, sw.seconds)
            with Stopwatch() as sw:
                plan.predict_proba(X_batch)
            plan_seconds = min(plan_seconds, sw.seconds)

    telemetry = _time_telemetry_overhead(
        plan, X_batch, rounds=rounds, baseline_seconds=plan_seconds
    )

    n = int(X_batch.shape[0])
    return {
        "n_samples": n,
        "n_features": int(X_batch.shape[1]),
        "n_draws": int(n_draws),
        "rounds": rounds,
        "before": {
            "serve_seconds": naive_seconds,
            "rows_per_sec": n / max(naive_seconds, 1e-9),
        },
        "after": {
            "serve_seconds": plan_seconds,
            "rows_per_sec": n / max(plan_seconds, 1e-9),
        },
        "speedup": naive_seconds / max(plan_seconds, 1e-9),
        "max_abs_diff": max_abs_diff,
        "equivalent": max_abs_diff == 0.0,
        "telemetry": telemetry,
    }


def _time_telemetry_overhead(
    plan, X_batch: np.ndarray, *, rounds: int, baseline_seconds: float
) -> dict:
    """Cost of the live metrics plane on the compiled serve path.

    Times the plan with a live :class:`MetricsRegistry` installed (stage
    histograms + latency sketches active) and again with the Prometheus
    endpoint up and a 1 Hz scraper attached, against the no-op-collector
    baseline measured by the caller.  Overheads are reported as fractions
    (0.03 = 3% slower than disabled telemetry).
    """
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    try:
        metrics_seconds = float("inf")
        for _ in range(rounds):
            with Stopwatch() as sw:
                plan.predict_proba(X_batch)
            metrics_seconds = min(metrics_seconds, sw.seconds)

        from repro.obs.exporters import PrometheusExporter

        with PrometheusExporter(registry, port=0) as exporter:
            import threading
            import urllib.request

            stop = threading.Event()

            def scrape_loop() -> None:
                while not stop.wait(1.0):
                    try:
                        urllib.request.urlopen(exporter.url, timeout=2).read()
                    except OSError:
                        pass

            scraper = threading.Thread(target=scrape_loop, daemon=True)
            scraper.start()
            try:
                scraped_seconds = float("inf")
                for _ in range(rounds):
                    with Stopwatch() as sw:
                        plan.predict_proba(X_batch)
                    scraped_seconds = min(scraped_seconds, sw.seconds)
            finally:
                stop.set()
                scraper.join(timeout=3.0)
    finally:
        set_metrics(previous)
    baseline = max(baseline_seconds, 1e-9)
    return {
        "disabled_seconds": baseline_seconds,
        "metrics_seconds": metrics_seconds,
        "metrics_overhead": metrics_seconds / baseline - 1.0,
        "scraped_seconds": scraped_seconds,
        "scraped_overhead": scraped_seconds / baseline - 1.0,
    }


def run_bench_serve(
    dataset: str = "5gc",
    *,
    preset: str | ExperimentPreset | None = None,
    model: str = "MLP",
    rounds: int = 3,
    n_draws: int = 1,
    shots: int = 10,
    random_state: int = 0,
    out: str | None = None,
) -> dict:
    """Fit the FS+GAN pipeline on the preset workload and benchmark serving.

    Returns the record; when ``out`` is given, also merges it into that
    benchmark file under its :func:`repro.experiments.bench.bench_key`.
    """
    preset = preset if isinstance(preset, ExperimentPreset) else get_preset(preset)
    logger = get_logger("repro.experiments.bench_serve")
    bench = make_benchmark(dataset, preset, random_state=random_state)
    Xt_few, _yt_few, Xt_test, _yt_test = bench.few_shot_split(
        shots, random_state=random_state
    )
    factory = model_factories(preset, random_state=random_state)[model]
    pipeline = FSGANPipeline(
        factory,
        reconstruction_config=ReconstructionConfig(
            epochs=preset.gan_epochs,
            noise_dim=preset.gan_noise_dim,
            hidden_size=preset.gan_hidden,
        ),
        random_state=random_state,
    )
    with get_tracer().span("bench_serve.fit", dataset=dataset, preset=preset.name):
        pipeline.fit(bench.X_source, bench.y_source, Xt_few)

    timed = bench_serve_record(pipeline, Xt_test, rounds=rounds, n_draws=n_draws)
    record = BenchRecord(
        suite="serve",
        dataset=dataset,
        preset=preset.name,
        seed=random_state,
        before=timed.pop("before"),
        after=timed.pop("after"),
        speedup=timed.pop("speedup"),
        equivalent=timed.pop("equivalent"),
        extras={**timed, "model": model, "shots": shots},
    ).to_dict()
    if out:
        write_bench_record(record, out, schema=BENCH_SERVE_SCHEMA)
        logger.info("benchmark record written to %s", out)
    return record


__all__ = ["BENCH_SERVE_SCHEMA", "bench_key", "bench_serve_record", "run_bench_serve"]
