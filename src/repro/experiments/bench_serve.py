"""Serving benchmark behind ``repro bench --suite serve``.

Measures the compiled :class:`~repro.serve.plan.InferencePlan` against the
naive serve path (``FSGANPipeline.predict_proba``, which allocates fresh
stage arrays per batch) on the same fitted pipeline, same batch, same RNG
state.  The record also carries the equivalence evidence: the plan is
compiled from the pipeline's RNG state *before* either side scores, so its
float64 probabilities must match the pipeline's bit for bit
(``max_abs_diff == 0.0``).

Records are merged into a seed-keyed JSON file (``BENCH_serve.json`` by
default) with the same layout as the FS / NN benchmark files.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ReconstructionConfig
from repro.core.pipeline import FSGANPipeline
from repro.experiments.bench_registry import (
    BenchRecord,
    bench_key,
    get_suite,
    write_bench_record,
)
from repro.experiments.models import model_factories
from repro.experiments.presets import ExperimentPreset, get_preset
from repro.experiments.runner import make_benchmark
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.obs.trace import Stopwatch, get_tracer

#: schema tag stamped into every benchmark file this module writes
#: (owned by the suite registry; kept as a module constant for callers)
BENCH_SERVE_SCHEMA = get_suite("serve").schema


def bench_serve_record(
    pipeline: FSGANPipeline,
    X_batch: np.ndarray,
    *,
    rounds: int = 3,
    n_draws: int = 1,
) -> dict:
    """Time compiled-plan vs naive serving on a fitted pipeline.

    The parity check comes first, from a single aligned RNG state; the
    timing loop then takes the best of ``rounds`` runs per side (RNG
    advancement does not affect wall clock).
    """
    rounds = max(1, rounds)
    plan = pipeline.compile(n_draws=n_draws)
    # parity: plan cloned the RNG at state S; the pipeline consumes from S too
    expected = pipeline.predict_proba(X_batch, n_draws=n_draws)
    got = plan.predict_proba(X_batch)
    max_abs_diff = float(np.max(np.abs(expected - got))) if expected.size else 0.0

    naive_seconds = plan_seconds = float("inf")
    with get_tracer().span("bench_serve.time", rounds=rounds, n_draws=n_draws):
        for _ in range(rounds):
            with Stopwatch() as sw:
                pipeline.predict_proba(X_batch, n_draws=n_draws)
            naive_seconds = min(naive_seconds, sw.seconds)
            with Stopwatch() as sw:
                plan.predict_proba(X_batch)
            plan_seconds = min(plan_seconds, sw.seconds)

    telemetry = _time_telemetry_overhead(
        plan, X_batch, rounds=rounds, baseline_seconds=plan_seconds
    )

    n = int(X_batch.shape[0])
    return {
        "n_samples": n,
        "n_features": int(X_batch.shape[1]),
        "n_draws": int(n_draws),
        "rounds": rounds,
        "before": {
            "serve_seconds": naive_seconds,
            "rows_per_sec": n / max(naive_seconds, 1e-9),
        },
        "after": {
            "serve_seconds": plan_seconds,
            "rows_per_sec": n / max(plan_seconds, 1e-9),
        },
        "speedup": naive_seconds / max(plan_seconds, 1e-9),
        "max_abs_diff": max_abs_diff,
        "equivalent": max_abs_diff == 0.0,
        "telemetry": telemetry,
    }


def _time_telemetry_overhead(
    plan, X_batch: np.ndarray, *, rounds: int, baseline_seconds: float
) -> dict:
    """Cost of the live metrics plane on the compiled serve path.

    Times the plan with a live :class:`MetricsRegistry` installed (stage
    histograms + latency sketches active) and again with the Prometheus
    endpoint up and a 1 Hz scraper attached, against the no-op-collector
    baseline measured by the caller.  Overheads are reported as fractions
    (0.03 = 3% slower than disabled telemetry).
    """
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    try:
        metrics_seconds = float("inf")
        for _ in range(rounds):
            with Stopwatch() as sw:
                plan.predict_proba(X_batch)
            metrics_seconds = min(metrics_seconds, sw.seconds)

        from repro.obs.exporters import PrometheusExporter

        with PrometheusExporter(registry, port=0) as exporter:
            import threading
            import urllib.request

            stop = threading.Event()

            def scrape_loop() -> None:
                while not stop.wait(1.0):
                    try:
                        urllib.request.urlopen(exporter.url, timeout=2).read()
                    except OSError:
                        pass

            scraper = threading.Thread(target=scrape_loop, daemon=True)
            scraper.start()
            try:
                scraped_seconds = float("inf")
                for _ in range(rounds):
                    with Stopwatch() as sw:
                        plan.predict_proba(X_batch)
                    scraped_seconds = min(scraped_seconds, sw.seconds)
            finally:
                stop.set()
                scraper.join(timeout=3.0)
    finally:
        set_metrics(previous)
    baseline = max(baseline_seconds, 1e-9)
    metrics_raw = metrics_seconds / baseline - 1.0
    scraped_raw = scraped_seconds / baseline - 1.0
    # a negative raw overhead is timing jitter (the instrumented run beat
    # the baseline); clamp the headline numbers and report the observed
    # jitter magnitude so the CI gate never trips on noise
    return {
        "disabled_seconds": baseline_seconds,
        "metrics_seconds": metrics_seconds,
        "metrics_overhead": max(0.0, metrics_raw),
        "metrics_overhead_raw": metrics_raw,
        "scraped_seconds": scraped_seconds,
        "scraped_overhead": max(0.0, scraped_raw),
        "scraped_overhead_raw": scraped_raw,
        "noise_floor": max(0.0, -metrics_raw, -scraped_raw),
    }


def run_bench_serve(
    dataset: str = "5gc",
    *,
    preset: str | ExperimentPreset | None = None,
    model: str = "MLP",
    rounds: int = 3,
    n_draws: int = 1,
    shots: int = 10,
    random_state: int = 0,
    out: str | None = None,
) -> dict:
    """Fit the FS+GAN pipeline on the preset workload and benchmark serving.

    Returns the record; when ``out`` is given, also merges it into that
    benchmark file under its :func:`repro.experiments.bench.bench_key`.
    """
    preset = preset if isinstance(preset, ExperimentPreset) else get_preset(preset)
    logger = get_logger("repro.experiments.bench_serve")
    bench = make_benchmark(dataset, preset, random_state=random_state)
    Xt_few, _yt_few, Xt_test, _yt_test = bench.few_shot_split(
        shots, random_state=random_state
    )
    factory = model_factories(preset, random_state=random_state)[model]
    pipeline = FSGANPipeline(
        factory,
        reconstruction_config=ReconstructionConfig(
            epochs=preset.gan_epochs,
            noise_dim=preset.gan_noise_dim,
            hidden_size=preset.gan_hidden,
        ),
        random_state=random_state,
    )
    with get_tracer().span("bench_serve.fit", dataset=dataset, preset=preset.name):
        pipeline.fit(bench.X_source, bench.y_source, Xt_few)

    timed = bench_serve_record(pipeline, Xt_test, rounds=rounds, n_draws=n_draws)
    record = BenchRecord(
        suite="serve",
        dataset=dataset,
        preset=preset.name,
        seed=random_state,
        before=timed.pop("before"),
        after=timed.pop("after"),
        speedup=timed.pop("speedup"),
        equivalent=timed.pop("equivalent"),
        extras={**timed, "model": model, "shots": shots},
    ).to_dict()
    if out:
        write_bench_record(record, out, schema=BENCH_SERVE_SCHEMA)
        logger.info("benchmark record written to %s", out)
    return record


def _fit_tenants(
    dataset: str,
    preset: ExperimentPreset,
    *,
    tenants: int,
    model: str,
    shots: int,
    random_state: int,
    root,
) -> tuple[list[str], np.ndarray]:
    """Fit and save ``tenants`` per-seed pipeline artifacts under ``root``.

    Each tenant is the same (domain, target) problem fitted at a different
    seed — the paper's one-adapter-per-domain deployment shape at smoke
    scale.  Returns the tenant names and the target-domain test matrix the
    load generator slices its traffic from.
    """
    from repro.core.artifacts import save_artifact

    bench = make_benchmark(dataset, preset, random_state=random_state)
    names = []
    X_test = None
    for i in range(tenants):
        seed = random_state + i
        Xt_few, _y_few, Xt_test, _y_test = bench.few_shot_split(
            shots, random_state=seed
        )
        if X_test is None:
            X_test = Xt_test
        factory = model_factories(preset, random_state=seed)[model]
        pipeline = FSGANPipeline(
            factory,
            reconstruction_config=ReconstructionConfig(
                epochs=preset.gan_epochs,
                noise_dim=preset.gan_noise_dim,
                hidden_size=preset.gan_hidden,
            ),
            random_state=seed,
        )
        pipeline.fit(bench.X_source, bench.y_source, Xt_few)
        name = f"tenant-{i:02d}"
        save_artifact(pipeline, f"{root}/{name}.npz")
        names.append(name)
    return names, X_test


def run_bench_serve_sustained(
    dataset: str = "5gc",
    *,
    preset: str | ExperimentPreset | None = None,
    model: str = "MLP",
    tenants: int = 3,
    duration: float = 2.0,
    rate: float = 300.0,
    clients: int = 8,
    micro_batch_rows: int = 128,
    n_draws: int = 1,
    shots: int = 10,
    random_state: int = 0,
    out: str | None = None,
    workdir: str | None = None,
) -> dict:
    """Sustained-throughput benchmark of the multi-tenant serving daemon.

    Three measured passes over the same saved tenant artifacts:

    1. **before** — closed-loop saturation with coalescing *off*: every
       request is scored in its own padded execution (the batch-size-1
       daemon baseline).
    2. **after** — the same closed-loop load with micro-batch coalescing
       *on*; the throughput ratio is the record's gated ``speedup``.
    3. **latency** — an open-loop Poisson pass at ``rate`` req/s against
       the coalescing daemon, capturing every (tenant, seq, X, proba); the
       client-observed p50/p90/p99 land in the record and the capture is
       replayed request-by-request against freshly loaded plans, which
       must reproduce the micro-batched results bit for bit
       (``max_abs_diff == 0.0``).

    The cache is sized to hold every tenant (eviction resets a tenant's
    RNG stream; mid-run eviction behaviour is pinned by its own tests).
    """
    import tempfile

    from repro.experiments.loadgen import replay_capture, run_loadgen
    from repro.serve.daemon import DaemonConfig, ServeDaemon

    preset = preset if isinstance(preset, ExperimentPreset) else get_preset(preset)
    logger = get_logger("repro.experiments.bench_serve")
    if tenants < 1:
        raise ValueError("sustained benchmark needs >= 1 tenant")

    with tempfile.TemporaryDirectory() as tmp:
        root = workdir or tmp
        with get_tracer().span("bench_serve.fit_tenants", dataset=dataset,
                               tenants=tenants):
            names, X_test = _fit_tenants(
                dataset, preset, tenants=tenants, model=model, shots=shots,
                random_state=random_state, root=root,
            )
        base = dict(root=root, port=None, n_draws=n_draws,
                    micro_batch_rows=micro_batch_rows,
                    cache_size=max(8, tenants))

        with get_tracer().span("bench_serve.sustained", mode="closed"):
            with ServeDaemon(DaemonConfig(**base, coalesce=False)) as daemon:
                before = run_loadgen(
                    daemon, X_test, names, mode="closed", duration=duration,
                    clients=clients, seed=random_state,
                )
            with ServeDaemon(DaemonConfig(**base, coalesce=True)) as daemon:
                after = run_loadgen(
                    daemon, X_test, names, mode="closed", duration=duration,
                    clients=clients, seed=random_state,
                )
                closed_stats = daemon.stats()["batcher"]

        with get_tracer().span("bench_serve.sustained", mode="open"):
            with ServeDaemon(DaemonConfig(**base, coalesce=True)) as daemon:
                open_loop = run_loadgen(
                    daemon, X_test, names, mode="open", duration=duration,
                    rate=rate, clients=clients, seed=random_state,
                    capture=True,
                )
        capture = open_loop.pop("capture")
        max_abs_diff = replay_capture(
            root, capture, micro_batch_rows=micro_batch_rows, n_draws=n_draws
        )

    def side(result: dict) -> dict:
        return {
            "mode": result["mode"],
            "rows_per_sec": result["rows_per_sec"],
            "requests_per_sec": result["achieved_rps"],
            "requests": result["requests"],
            "rows": result["rows"],
            "errors": result["errors"],
        }

    latency = open_loop["latency"]
    record = BenchRecord(
        suite="serve",
        dataset=dataset,
        preset="sustained",
        seed=random_state,
        before={**side(before), "coalesce": False},
        after={
            **side(after),
            "coalesce": True,
            "mean_batch_rows": closed_stats["mean_batch_rows"],
            "mean_batch_requests": closed_stats["mean_batch_requests"],
        },
        speedup=after["rows_per_sec"] / max(before["rows_per_sec"], 1e-9),
        equivalent=max_abs_diff == 0.0,
        extras={
            "max_abs_diff": max_abs_diff,
            "model": model,
            "shots": shots,
            "n_draws": int(n_draws),
            "tenants": tenants,
            "duration": duration,
            "clients": clients,
            "micro_batch_rows": micro_batch_rows,
            "base_preset": preset.name,
            "open_loop": {
                "offered_rate": open_loop["offered_rate"],
                "achieved_rps": open_loop["achieved_rps"],
                "rows_per_sec": open_loop["rows_per_sec"],
                "requests": open_loop["requests"],
                "errors": open_loop["errors"],
                "latency": latency,
                "per_tenant": open_loop["per_tenant"],
            },
        },
    ).to_dict()
    if out:
        write_bench_record(record, out, schema=BENCH_SERVE_SCHEMA)
        logger.info("benchmark record written to %s", out)
    return record


def cli_bench_serve(args, preset, out: str) -> str:
    """CLI adapter for ``repro bench --suite serve`` (the registry hook)."""
    from repro.experiments.reporting import (
        format_bench_serve,
        format_bench_serve_sustained,
    )

    if getattr(args, "sustained", False):
        record = run_bench_serve_sustained(
            args.dataset,
            preset=preset,
            tenants=args.tenants,
            duration=args.duration,
            rate=args.rate,
            clients=args.clients,
            n_draws=args.draws,
            shots=args.shots,
            random_state=args.seed,
            out=out,
        )
        return format_bench_serve_sustained(record)
    record = run_bench_serve(
        args.dataset,
        preset=preset,
        n_draws=args.draws,
        shots=args.shots,
        random_state=args.seed,
        out=out,
    )
    return format_bench_serve(record)


def check_serve_record(record: dict) -> list[str]:
    """Serve-suite equivalence oracle (the registry hook).

    One-shot records must prove bit-identity (``max_abs_diff == 0.0``)
    and carry non-negative clamped telemetry overheads.  ``sustained``
    records must additionally carry positive rows/sec on both sides and
    an ordered open-loop latency trio (p50 <= p90 <= p99).
    """
    problems = []
    diff = record.get("max_abs_diff")
    if diff != 0.0:
        problems.append(f"max_abs_diff must be exactly 0.0, got {diff!r}")
    telemetry = record.get("telemetry", {})
    for key in ("metrics_overhead", "scraped_overhead", "noise_floor"):
        value = telemetry.get(key)
        if value is not None and value < 0:
            problems.append(f"telemetry.{key} must be >= 0, got {value!r}")
    if record.get("preset") == "sustained":
        for side in ("before", "after"):
            rps = record[side].get("rows_per_sec")
            if not isinstance(rps, (int, float)) or rps <= 0:
                problems.append(
                    f"{side}.rows_per_sec must be > 0, got {rps!r}"
                )
            if record[side].get("errors"):
                problems.append(
                    f"{side} pass had {record[side]['errors']} errors"
                )
        latency = record.get("open_loop", {}).get("latency", {})
        trio = [latency.get(q) for q in ("p50", "p90", "p99")]
        if any(not isinstance(v, (int, float)) or v <= 0 for v in trio):
            problems.append(f"open-loop latency trio incomplete: {trio!r}")
        elif not trio[0] <= trio[1] <= trio[2]:
            problems.append(f"latency percentiles out of order: {trio!r}")
    return problems


__all__ = [
    "BENCH_SERVE_SCHEMA",
    "bench_key",
    "bench_serve_record",
    "check_serve_record",
    "cli_bench_serve",
    "run_bench_serve",
    "run_bench_serve_sustained",
]
