"""Table III: no-retraining robustness across two evolving target domains.

The 5GIPC data is split into one source and two drifted targets
(``drift_profile`` 1 and 2, whose intervention sets overlap ~70%).  A single
TNet fault-detection model is trained **only on Source**; two FS+GAN
adapters are fitted (one per target's few-shot data); each adapter is then
evaluated on **both** targets.  The paper's findings to reproduce:

- matched adapter (FS+GAN_i on Target_i) performs best;
- crossed adapters stay competitive (shared variant features);
- the downstream model is never retrained.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FSConfig, ReconstructionConfig
from repro.core.feature_separation import FeatureSeparator
from repro.core.reconstruction import VariantReconstructor
from repro.datasets.fivegipc import make_5gipc_multitarget
from repro.experiments.models import model_factories
from repro.experiments.presets import ExperimentPreset, get_preset
from repro.ml.metrics import macro_f1
from repro.ml.preprocessing import MinMaxScaler


def run_multitarget(
    *,
    preset: str | ExperimentPreset | None = None,
    model: str = "TNet",
    random_state: int = 0,
) -> dict:
    """Run the Table III cross-adapter grid.

    Returns ``{"scores": {(adapter, target, shots): mean_f1}, "overlap": float}``
    where ``overlap`` is the Jaccard similarity of the two adapters' variant
    sets at the largest shot count (the paper's "majority of domain-variant
    features were common" observation).
    """
    preset = preset if isinstance(preset, ExperimentPreset) else get_preset(preset)
    bench_1, bench_2 = make_5gipc_multitarget(
        preset.fivegipc, random_state=random_state
    )
    benches = {1: bench_1, 2: bench_2}

    scaler = MinMaxScaler().fit(bench_1.X_source)
    Xs = scaler.transform(bench_1.X_source)
    clf = model_factories(preset, random_state=random_state)[model]()
    clf.fit(Xs, bench_1.y_source)  # trained once, never retrained

    scores: dict[tuple, float] = {}
    variant_sets: dict[int, set] = {}
    for adapter_id, bench in benches.items():
        for shots in preset.shots:
            per_repeat: dict[int, list[float]] = {1: [], 2: []}
            for repeat in range(preset.repeats):
                seed = 1000 * shots + repeat + random_state
                X_few, _, _, _ = bench.few_shot_split(shots, random_state=seed)
                sep = FeatureSeparator(FSConfig())
                sep.fit(Xs, scaler.transform(X_few))
                X_inv, X_var = sep.split(Xs)
                rec = VariantReconstructor(
                    ReconstructionConfig(
                        strategy="gan",
                        noise_dim=preset.gan_noise_dim,
                        hidden_size=preset.gan_hidden,
                        epochs=preset.gan_epochs,
                    ),
                    random_state=random_state + repeat,
                )
                rec.fit(X_inv, X_var, bench_1.y_source)
                if shots == max(preset.shots) and repeat == 0:
                    variant_sets[adapter_id] = set(sep.variant_indices_.tolist())
                for target_id, target_bench in benches.items():
                    _, _, X_test, y_test = target_bench.few_shot_split(
                        shots, random_state=seed
                    )
                    Xt = scaler.transform(X_test)
                    inv_block, _ = sep.split(Xt)
                    X_hat = sep.merge(inv_block, rec.reconstruct(inv_block))
                    per_repeat[target_id].append(macro_f1(y_test, clf.predict(X_hat)))
            for target_id in benches:
                scores[(adapter_id, target_id, shots)] = float(
                    np.mean(per_repeat[target_id])
                )

    inter = variant_sets.get(1, set()) & variant_sets.get(2, set())
    union = variant_sets.get(1, set()) | variant_sets.get(2, set())
    overlap = len(inter) / len(union) if union else 0.0
    return {"scores": scores, "overlap": overlap, "variant_sets": variant_sets}
