"""Experiment harness: presets, runner and formatters regenerating every
table and figure of the paper's evaluation section (see DESIGN.md §4)."""

from repro.experiments.bench import (
    make_wide_pair,
    reference_discover,
    run_bench,
    run_bench_warm,
    run_bench_wide,
    write_bench_record,
)
from repro.experiments.bench_nn import run_bench_nn
from repro.experiments.bench_registry import (
    SUITES,
    BenchRecord,
    BenchSuite,
    bench_key,
    get_suite,
)
from repro.experiments.bench_serve import (
    bench_serve_record,
    run_bench_serve,
    run_bench_serve_sustained,
)
from repro.experiments.drift_schedule import (
    make_drift_schedule,
    run_adapt_scenario,
    run_bench_adapt,
)
from repro.experiments.loadgen import build_requests, replay_capture, run_loadgen
from repro.experiments.models import MODEL_NAMES, model_factories
from repro.experiments.multitarget import run_multitarget
from repro.experiments.presets import PRESETS, ExperimentPreset, get_preset
from repro.experiments.reporting import (
    format_ablation,
    format_bench,
    format_bench_nn,
    format_bench_serve,
    format_bench_serve_sustained,
    format_bench_warm,
    format_bench_wide,
    format_loadgen,
    format_multitarget,
    format_runtime,
    format_table1,
    format_variant_counts,
    summarize_improvement,
)
from repro.experiments.runner import (
    CellResult,
    SharedArtifacts,
    make_benchmark,
    run_ablation,
    run_table1,
)
from repro.experiments.runtime import measure_runtime
from repro.experiments.sensitivity import selection_variance, variant_counts

__all__ = [
    "BenchRecord",
    "BenchSuite",
    "CellResult",
    "ExperimentPreset",
    "MODEL_NAMES",
    "PRESETS",
    "SUITES",
    "SharedArtifacts",
    "bench_key",
    "build_requests",
    "format_ablation",
    "format_bench",
    "format_bench_nn",
    "format_bench_serve",
    "format_bench_serve_sustained",
    "format_bench_warm",
    "format_bench_wide",
    "format_loadgen",
    "format_multitarget",
    "format_runtime",
    "format_table1",
    "format_variant_counts",
    "get_preset",
    "get_suite",
    "make_benchmark",
    "make_drift_schedule",
    "make_wide_pair",
    "measure_runtime",
    "model_factories",
    "reference_discover",
    "replay_capture",
    "run_ablation",
    "run_adapt_scenario",
    "run_bench",
    "run_bench_adapt",
    "run_bench_warm",
    "bench_serve_record",
    "run_bench_nn",
    "run_bench_serve",
    "run_bench_serve_sustained",
    "run_bench_wide",
    "run_loadgen",
    "run_multitarget",
    "run_table1",
    "selection_variance",
    "write_bench_record",
    "summarize_improvement",
    "variant_counts",
]
