"""Load generator for the serving daemon.

Drives mixed-tenant request traffic against a :class:`ServeDaemon` —
either in-process (``daemon.submit``) or over its HTTP front — and
records client-observed latency in bounded quantile sketches.

Two modes:

``open``
    Open-loop Poisson arrivals: inter-arrival gaps are exponential draws
    from a seeded RNG at the offered ``rate`` (requests/sec), fired on a
    wall-clock schedule by a pool of client threads regardless of
    completion — the load that exposes queueing delay.  The schedule,
    tenant mix and request sizes are all pre-generated from the seed, so
    two runs offer byte-identical traffic.

``closed``
    Closed-loop saturation: ``clients`` threads each submit back-to-back
    (next request only after the previous completes) until the duration
    elapses — the load that measures peak sustained throughput.

Every request slices its feature rows cyclically from the caller's input
matrix; with ``capture=True`` the (tenant, seq, rows, proba) of every
successful request is kept so :func:`replay_capture` can re-score the
whole run request-by-request against a fresh cache and prove the
micro-batched results bit-identical (``max_abs_diff == 0.0``).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
import urllib.request

import numpy as np

from repro.obs.sketch import QuantileSketch
from repro.utils.errors import ValidationError

__all__ = ["build_requests", "replay_capture", "run_loadgen"]


class _InProcessTarget:
    """Scores through a live :class:`ServeDaemon` object."""

    def __init__(self, daemon, *, timeout: float) -> None:
        self.daemon = daemon
        self.timeout = timeout

    def score(self, tenant: str, X: np.ndarray):
        pending = self.daemon.submit(tenant, X)
        proba = pending.result(self.timeout)
        return pending.seq, proba


class _HTTPTarget:
    """Scores through a daemon's HTTP front (JSON wire format)."""

    def __init__(self, url: str, *, timeout: float) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    def score(self, tenant: str, X: np.ndarray):
        body = json.dumps({"x": X.tolist()}).encode("utf-8")
        request = urllib.request.Request(
            f"{self.url}/v1/score/{tenant}",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as resp:
            payload = json.loads(resp.read())
        return payload["seq"], np.asarray(payload["proba"], dtype=np.float64)


def build_requests(
    X: np.ndarray,
    tenants: list[str],
    *,
    count: int,
    rows_per_request: tuple[int, int] = (1, 8),
    seed: int = 0,
) -> list[tuple[str, np.ndarray]]:
    """Pre-generate a deterministic mixed-tenant request list.

    Each request draws a tenant (uniform) and a row count (uniform in
    ``rows_per_request`` inclusive) from the seeded RNG, slicing rows
    cyclically from ``X`` so the traffic content is reproducible.
    """
    if not tenants:
        raise ValidationError("loadgen needs at least one tenant")
    lo, hi = rows_per_request
    if not (1 <= lo <= hi):
        raise ValidationError(
            f"rows_per_request must satisfy 1 <= lo <= hi, got {lo, hi}"
        )
    X = np.ascontiguousarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] < hi:
        raise ValidationError(
            f"input matrix must be 2-D with >= {hi} rows, got shape {X.shape}"
        )
    rng = np.random.default_rng(seed)
    requests = []
    cursor = 0
    n_rows = X.shape[0]
    for _ in range(count):
        tenant = tenants[int(rng.integers(len(tenants)))]
        n = int(rng.integers(lo, hi + 1))
        if cursor + n > n_rows:
            cursor = 0
        requests.append((tenant, X[cursor:cursor + n]))
        cursor += n
    return requests


def _poisson_schedule(rate: float, duration: float, seed: int) -> list[float]:
    """Arrival offsets (seconds) of a Poisson process at ``rate`` req/s."""
    rng = np.random.default_rng(seed)
    offsets = []
    t = float(rng.exponential(1.0 / rate))
    while t < duration:
        offsets.append(t)
        t += float(rng.exponential(1.0 / rate))
    return offsets


def run_loadgen(
    target,
    X: np.ndarray,
    tenants: list[str],
    *,
    mode: str = "open",
    duration: float = 2.0,
    rate: float = 200.0,
    clients: int = 4,
    rows_per_request: tuple[int, int] = (1, 8),
    seed: int = 0,
    capture: bool = False,
    timeout: float = 30.0,
) -> dict:
    """Drive mixed-tenant load at a daemon; returns the traffic summary.

    ``target`` is a live :class:`~repro.serve.daemon.ServeDaemon` or an
    HTTP base URL string (``http://host:port``).  See the module
    docstring for the two modes.  The result dict carries request/row
    counts, achieved rows/sec, client-observed latency percentiles
    (overall and per tenant), and — with ``capture=True`` — the per-
    request ``(tenant, seq, X, proba)`` capture list for
    :func:`replay_capture`.
    """
    if mode not in ("open", "closed"):
        raise ValidationError(f"unknown loadgen mode {mode!r} (open/closed)")
    if duration <= 0:
        raise ValidationError("duration must be > 0")
    if clients < 1:
        raise ValidationError("clients must be >= 1")
    if isinstance(target, str):
        target = _HTTPTarget(target, timeout=timeout)
    elif hasattr(target, "submit"):
        # a live ServeDaemon (its own .score() hides the seq we need)
        target = _InProcessTarget(target, timeout=timeout)

    if mode == "open":
        if rate <= 0:
            raise ValidationError("open-loop mode needs a rate > 0")
        schedule = _poisson_schedule(rate, duration, seed)
        count = len(schedule)
    else:
        schedule = None
        # closed-loop request pool is cycled through; size it generously
        count = max(4096, clients * 64)
    requests = build_requests(
        X, tenants, count=count, rows_per_request=rows_per_request, seed=seed
    )

    lock = threading.Lock()
    latency = QuantileSketch()
    per_tenant: dict[str, dict] = {
        t: {"requests": 0, "rows": 0, "latency": QuantileSketch()}
        for t in tenants
    }
    captured: list[tuple[str, int, np.ndarray, np.ndarray]] = []
    errors = [0]
    counter = itertools.count()
    start = time.perf_counter()
    deadline = start + duration

    def fire(index: int) -> None:
        tenant, rows = requests[index]
        t0 = time.perf_counter()
        try:
            seq, proba = target.score(tenant, rows)
        except Exception as exc:  # noqa: BLE001 — a failed request is a
            # counted error, never a dead client thread
            with lock:
                errors[0] += 1
                if errors[0] == 1:
                    summary["first_error"] = f"{type(exc).__name__}: {exc}"
            return
        elapsed = time.perf_counter() - t0
        with lock:
            latency.add(elapsed)
            stats = per_tenant[tenant]
            stats["requests"] += 1
            stats["rows"] += rows.shape[0]
            stats["latency"].add(elapsed)
            if capture:
                captured.append((tenant, seq, rows, proba))

    def open_worker() -> None:
        while True:
            i = next(counter)
            if i >= len(schedule):
                return
            wait = start + schedule[i] - time.perf_counter()
            if wait > 0:
                time.sleep(wait)
            fire(i)

    def closed_worker() -> None:
        while time.perf_counter() < deadline:
            fire(next(counter) % len(requests))

    summary: dict = {}
    worker = open_worker if mode == "open" else closed_worker
    threads = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    ok = latency.count
    rows_ok = sum(stats["rows"] for stats in per_tenant.values())
    lat = latency.summary() if ok else {}
    summary.update({
        "mode": mode,
        "duration": duration,
        "elapsed_seconds": elapsed,
        "clients": clients,
        "seed": seed,
        "rows_per_request": list(rows_per_request),
        "requests": ok,
        "rows": rows_ok,
        "errors": errors[0],
        "achieved_rps": ok / elapsed if elapsed > 0 else 0.0,
        "rows_per_sec": rows_ok / elapsed if elapsed > 0 else 0.0,
        "latency": {
            key: lat.get(key) for key in
            ("count", "mean", "p50", "p90", "p99", "max")
        } if ok else {},
        "per_tenant": {
            tenant: {
                "requests": stats["requests"],
                "rows": stats["rows"],
                "p50": stats["latency"].percentile(50)
                if stats["latency"].count else None,
                "p99": stats["latency"].percentile(99)
                if stats["latency"].count else None,
            }
            for tenant, stats in per_tenant.items()
        },
    })
    if mode == "open":
        summary["offered_rate"] = rate
        summary["offered_requests"] = len(schedule)
    if capture:
        summary["capture"] = captured
    return summary


def replay_capture(root, capture, *, micro_batch_rows: int,
                   n_draws: int = 1) -> float:
    """Re-score a captured run request-by-request; returns max abs diff.

    Loads every tenant fresh from ``root`` (restoring the artifact's
    saved RNG state, exactly like the daemon's first load) and replays
    each tenant's captured requests one at a time in ``seq`` order.  The
    executor capacity must match the live run's ``micro_batch_rows`` —
    padded execution is bit-stable only at a fixed capacity.  A return of
    exactly ``0.0`` proves the micro-batched daemon results equal
    per-request scoring bit for bit.
    """
    from repro.serve.registry import PlanCache

    cache = PlanCache(
        root, capacity=1 + len({c[0] for c in capture}) if capture else 1,
        n_draws=n_draws, micro_batch_rows=micro_batch_rows,
    )
    by_tenant: dict[str, list] = {}
    for tenant, seq, rows, proba in capture:
        by_tenant.setdefault(tenant, []).append((seq, rows, proba))
    max_abs_diff = 0.0
    for tenant, items in by_tenant.items():
        items.sort(key=lambda item: item[0])
        seqs = [seq for seq, _, _ in items]
        if seqs != list(range(len(seqs))):
            raise ValidationError(
                f"capture for tenant {tenant!r} is not a complete seq "
                f"prefix (got {seqs[:5]}...); replay needs every request "
                f"from a fresh daemon"
            )
        executor = cache.get(tenant).executor
        for _seq, rows, proba in items:
            ref = executor.score([executor.check_request(rows)])[0]
            if proba.shape != ref.shape:
                raise ValidationError(
                    f"capture shape mismatch for tenant {tenant!r}: "
                    f"{proba.shape} vs {ref.shape}"
                )
            diff = float(np.max(np.abs(ref - proba))) if ref.size else 0.0
            max_abs_diff = max(max_abs_diff, diff)
    return max_abs_diff
