"""NN-engine benchmark behind ``repro bench --suite nn``.

Measures the fused, allocation-free training/serving engine of
:mod:`repro.nn` against the pre-fusion implementations frozen in
:mod:`repro.nn.reference`, on the paper's cGAN workload:

- **training** — :class:`repro.gan.cgan.ConditionalGAN` (fused) vs
  :class:`repro.nn.reference.ReferenceConditionalGAN` (frozen), same data,
  same seed.  Both consume the RNG identically, so the float64 comparison
  is bit-for-bit: the record's ``equivalent`` flag checks generator and
  discriminator state dicts with ``np.array_equal``.
- **serving** — the n_draws-vectorized ``generate`` (one stacked forward
  pass) vs the frozen per-draw loop.  The stacked pass matches the loop to
  last-ULP roundoff: BLAS picks different blocking for the tall stacked
  matmuls (observably in odd-width output projections), so individual
  elements may differ by one unit in the last place.  The check is
  therefore ``|diff| <= SERVE_ATOL`` (1e-12, ~4 orders looser than the
  observed 2e-16 and ~9 tighter than any physical signal) with the exact
  max recorded.
- **float32 fast path** — training wall clock at ``dtype="float32"``, plus
  a serving tolerance check: the float64-trained generator converted with
  ``Sequential.to("float32")`` must reproduce the float64 outputs within
  the documented tolerance (single-pass roundoff, not trajectory
  divergence — GAN *training* trajectories are chaotic and are not
  compared across dtypes).

Records are merged into a seed-keyed JSON file (``BENCH_nn.json`` by
default) with the same layout as the FS benchmark file.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.experiments.bench_registry import (
    BenchRecord,
    bench_key,
    get_suite,
    write_bench_record,
)
from repro.experiments.presets import ExperimentPreset, get_preset
from repro.experiments.runner import make_benchmark
from repro.gan.cgan import ConditionalGAN
from repro.ml.preprocessing import MinMaxScaler, one_hot
from repro.nn.reference import ReferenceConditionalGAN
from repro.obs.logging import get_logger
from repro.obs.trace import Stopwatch, get_tracer

#: schema tag stamped into every benchmark file this module writes
#: (owned by the suite registry; kept as a module constant for callers)
BENCH_NN_SCHEMA = get_suite("nn").schema

#: serving tolerance for the float32 fast path (see EXPERIMENTS.md):
#: one forward pass of float32 roundoff over two hidden layers
FLOAT32_RTOL = 1e-3
FLOAT32_ATOL = 1e-3

#: float64 serving tolerance: the stacked forward differs from the
#: per-draw loop only by BLAS blocking roundoff (last ULP, ~1e-16)
SERVE_ATOL = 1e-12


def _feature_split(d: int) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic invariant/variant column split (last quarter variant).

    The NN suite benchmarks the training engine, not FS discovery, so the
    split is fixed rather than discovered — roughly the variant fraction FS
    finds on the synthetic datasets.
    """
    n_var = max(1, d // 4)
    cols = np.arange(d)
    return cols[: d - n_var], cols[d - n_var:]


def run_bench_nn(
    dataset: str = "5gc",
    *,
    preset: str | ExperimentPreset | None = None,
    epochs: int | None = None,
    serve_rounds: int = 3,
    n_serve_samples: int = 64,
    n_draws: int = 8,
    random_state: int = 0,
    out: str | None = None,
) -> dict:
    """Benchmark fused vs reference cGAN training and batched MC serving.

    ``epochs`` overrides the preset's GAN budget (both sides always train
    the same number of epochs).  Serving timings are the best of
    ``serve_rounds`` runs per side.  Returns the record; when ``out`` is
    given, also merges it into that benchmark file under its
    :func:`repro.experiments.bench.bench_key`.
    """
    preset = preset if isinstance(preset, ExperimentPreset) else get_preset(preset)
    tracer = get_tracer()
    logger = get_logger("repro.experiments.bench_nn")
    bench = make_benchmark(dataset, preset, random_state=random_state)
    Xs = MinMaxScaler().fit_transform(bench.X_source)
    inv_cols, var_cols = _feature_split(Xs.shape[1])
    X_inv, X_var = Xs[:, inv_cols], Xs[:, var_cols]
    y_onehot = one_hot(np.asarray(bench.y_source, dtype=np.int64))
    n_epochs = int(epochs) if epochs is not None else preset.gan_epochs

    gan_kwargs = dict(
        noise_dim=preset.gan_noise_dim,
        hidden_size=preset.gan_hidden,
        epochs=n_epochs,
        random_state=random_state,
    )

    with tracer.span("bench_nn.reference_train", epochs=n_epochs), Stopwatch() as sw:
        ref = ReferenceConditionalGAN(**gan_kwargs).fit(X_inv, X_var, y_onehot)
    ref_seconds = sw.seconds
    logger.info("reference cGAN: %.2f s (%d epochs)", ref_seconds, n_epochs)

    with tracer.span("bench_nn.fused_train", epochs=n_epochs), Stopwatch() as sw:
        fused = ConditionalGAN(**gan_kwargs).fit(X_inv, X_var, y_onehot)
    fused_seconds = sw.seconds
    logger.info("fused cGAN:     %.2f s (%d epochs)", fused_seconds, n_epochs)

    def _states_equal(a, b) -> bool:
        sa, sb = a.state_dict(), b.state_dict()
        return set(sa) == set(sb) and all(np.array_equal(sa[k], sb[k]) for k in sa)

    train_equivalent = bool(
        _states_equal(fused.generator_, ref.generator_)
        and _states_equal(fused.discriminator_, ref.discriminator_)
        and fused.history_ == ref.history_
    )

    # --- serving: batched MC inference vs the frozen per-draw loop
    X_serve = X_inv[: min(n_serve_samples, X_inv.shape[0])]
    serve_rounds = max(1, serve_rounds)
    serve_ref = serve_fused = float("inf")
    with tracer.span("bench_nn.serve", n_draws=n_draws, rounds=serve_rounds):
        for _ in range(serve_rounds):
            with Stopwatch() as sw:
                out_ref = ref.generate(X_serve, n_draws=n_draws,
                                       random_state=random_state)
            serve_ref = min(serve_ref, sw.seconds)
            with Stopwatch() as sw:
                out_fused = fused.generate(X_serve, n_draws=n_draws,
                                           random_state=random_state)
            serve_fused = min(serve_fused, sw.seconds)
    serve_max_diff = float(np.max(np.abs(out_ref - out_fused)))
    serve_equivalent = serve_max_diff <= SERVE_ATOL

    # --- float32 fast path: training wall clock + serving tolerance
    with tracer.span("bench_nn.float32_train", epochs=n_epochs), Stopwatch() as sw:
        ConditionalGAN(dtype="float32", **gan_kwargs).fit(X_inv, X_var, y_onehot)
    f32_seconds = sw.seconds
    g32 = copy.deepcopy(fused.generator_).to(np.float32)
    z_check = np.random.default_rng(random_state).standard_normal(
        (X_serve.shape[0], preset.gan_noise_dim)
    )
    serve_in = np.concatenate([X_serve, z_check], axis=1)
    out64 = fused.generator_.forward(serve_in, training=False).copy()
    out32 = g32.forward(serve_in.astype(np.float32), training=False)
    f32_max_diff = float(np.max(np.abs(out64 - out32)))
    f32_within_tol = bool(
        np.allclose(out64, out32, rtol=FLOAT32_RTOL, atol=FLOAT32_ATOL)
    )

    record = BenchRecord(
        suite="nn",
        dataset=dataset,
        preset=preset.name,
        seed=random_state,
        before={
            "train_seconds": ref_seconds,
            "epochs_per_sec": n_epochs / max(ref_seconds, 1e-9),
            "serve_seconds": serve_ref,
        },
        after={
            "train_seconds": fused_seconds,
            "epochs_per_sec": n_epochs / max(fused_seconds, 1e-9),
            "serve_seconds": serve_fused,
        },
        speedup=ref_seconds / max(fused_seconds, 1e-9),
        equivalent=train_equivalent,
        extras={
            "epochs": n_epochs,
            "hidden_size": preset.gan_hidden,
            "noise_dim": preset.gan_noise_dim,
            "n_samples": int(X_inv.shape[0]),
            "n_invariant": int(X_inv.shape[1]),
            "n_variant": int(X_var.shape[1]),
            "serve": {
                "n_samples": int(X_serve.shape[0]),
                "n_draws": int(n_draws),
                "speedup": serve_ref / max(serve_fused, 1e-9),
                "max_abs_diff": serve_max_diff,
                "equivalent": serve_equivalent,
            },
            "float32": {
                "train_seconds": f32_seconds,
                "speedup_vs_float64": fused_seconds / max(f32_seconds, 1e-9),
                "serve_max_abs_diff": f32_max_diff,
                "within_tolerance": f32_within_tol,
            },
        },
    ).to_dict()
    if out:
        write_bench_record(record, out, schema=BENCH_NN_SCHEMA)
        logger.info("benchmark record written to %s", out)
    return record


def cli_bench_nn(args, preset, out: str) -> str:
    """CLI adapter for ``repro bench --suite nn`` (the registry hook)."""
    from repro.experiments.reporting import format_bench_nn

    record = run_bench_nn(
        args.dataset,
        preset=preset,
        epochs=args.epochs,
        random_state=args.seed,
        out=out,
    )
    return format_bench_nn(record)


def check_nn_record(record: dict) -> list[str]:
    """NN-suite equivalence oracle (the registry hook).

    The fused engine must have reproduced reference training bit for bit
    (shared ``equivalent`` flag), its serve path must match within the
    documented tolerance, and the float32 variant must sit inside its own
    tolerance band.
    """
    problems = []
    serve = record.get("serve", {})
    if serve.get("equivalent") is not True:
        problems.append("serve sub-record does not assert equivalence")
    float32 = record.get("float32", {})
    if float32 and float32.get("within_tolerance") is not True:
        problems.append("float32 sub-record is outside tolerance")
    for label, sub in (("serve", serve),):
        diff = sub.get("max_abs_diff")
        if diff is not None and not (isinstance(diff, (int, float))
                                     and diff >= 0):
            problems.append(f"{label}.max_abs_diff must be >= 0, got {diff!r}")
    return problems


__all__ = ["BENCH_NN_SCHEMA", "FLOAT32_ATOL", "FLOAT32_RTOL", "SERVE_ATOL",
           "cli_bench_nn", "check_nn_record", "run_bench_nn", "bench_key"]
