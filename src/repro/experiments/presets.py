"""Experiment presets: paper-scale and scaled-down configurations.

The paper ran on a dual-Xeon + Tesla P40 server; this reproduction runs on
whatever CPU is available, so every experiment accepts a preset:

- ``smoke`` — minutes-scale, for CI and pytest-benchmark runs;
- ``fast``  — the default preset behind the recorded EXPERIMENTS.md numbers;
- ``paper`` — full published sizes (442 features, 3,645 source samples,
  20 repeats, 500-epoch GAN).  Hours-scale on CPU.

Select at runtime with the ``REPRO_PRESET`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.datasets.fivegc import FiveGCConfig
from repro.datasets.fivegipc import FiveGIPCConfig
from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class ModelParams:
    """Downstream-model hyperparameters for one preset."""

    tnet_epochs: int = 40
    mlp_epochs: int = 30
    rf_estimators: int = 30
    rf_max_depth: int = 12
    xgb_estimators: int = 15
    xgb_max_depth: int = 3
    xgb_max_features: float = 0.3


@dataclass(frozen=True)
class ExperimentPreset:
    """Everything a table run needs: dataset sizes, model/GAN budgets, repeats."""

    name: str
    fivegc: FiveGCConfig
    fivegipc: FiveGIPCConfig
    models: ModelParams
    gan_epochs: int
    gan_noise_dim: int
    gan_hidden: int
    repeats: int
    shots: tuple[int, ...] = (1, 5, 10)
    baseline_epochs: int = 40
    episodes: int = 200


PRESETS: dict[str, ExperimentPreset] = {
    "smoke": ExperimentPreset(
        name="smoke",
        fivegc=FiveGCConfig(n_source=480, n_target=360, feature_scale=0.15),
        fivegipc=FiveGIPCConfig(sample_scale=0.08, feature_scale=0.6),
        models=ModelParams(
            tnet_epochs=30, mlp_epochs=30, rf_estimators=15, rf_max_depth=10,
            xgb_estimators=8, xgb_max_depth=3, xgb_max_features=0.3,
        ),
        gan_epochs=250,
        gan_noise_dim=6,
        gan_hidden=128,
        repeats=1,
        baseline_epochs=30,
        episodes=100,
    ),
    "fast": ExperimentPreset(
        name="fast",
        fivegc=FiveGCConfig(n_source=800, n_target=480, feature_scale=0.25),
        fivegipc=FiveGIPCConfig(sample_scale=0.15, feature_scale=1.0),
        models=ModelParams(),
        gan_epochs=300,
        gan_noise_dim=8,
        gan_hidden=128,
        repeats=3,
    ),
    "paper": ExperimentPreset(
        name="paper",
        fivegc=FiveGCConfig(),  # 442 features, 3,645 source samples
        fivegipc=FiveGIPCConfig(),
        models=ModelParams(
            tnet_epochs=60, mlp_epochs=60, rf_estimators=100, rf_max_depth=None,
            xgb_estimators=50, xgb_max_depth=4, xgb_max_features=0.2,
        ),
        gan_epochs=500,
        gan_noise_dim=30,
        gan_hidden=256,
        repeats=20,
        baseline_epochs=60,
        episodes=500,
    ),
}


def get_preset(name: str | None = None) -> ExperimentPreset:
    """Resolve a preset by name, or from ``REPRO_PRESET`` (default: smoke)."""
    key = name or os.environ.get("REPRO_PRESET", "smoke")
    try:
        return PRESETS[key]
    except KeyError:
        raise ValidationError(
            f"unknown preset {key!r}; available: {sorted(PRESETS)}"
        ) from None
