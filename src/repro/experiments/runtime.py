"""Running-time measurements of §VI-D.

The paper reports: FS ≈ 42 min (5GC) / 35 min (5GIPC) dominated by CI
tests; GAN training ≈ 12 / 7 min; inference ≈ 0.05 s per sample (one
generator forward pass).  This module measures the same three quantities on
the configured preset so the scaling story (FS > GAN training ≫ inference)
can be checked at any size.

Timing is span-based: each phase opens a span on the global tracer
(``runtime.fs`` / ``runtime.gan`` / ``runtime.inference``), so a CLI run
with ``--trace`` exports the full decomposition — including the per-CI-test
batch children recorded by :class:`repro.causal.FNodeDiscovery` — while a
plain run pays only the no-op tracer.
"""

from __future__ import annotations

from repro.core.config import FSConfig, ReconstructionConfig
from repro.core.feature_separation import FeatureSeparator
from repro.core.reconstruction import VariantReconstructor
from repro.experiments.presets import ExperimentPreset, get_preset
from repro.experiments.runner import make_benchmark
from repro.ml.preprocessing import MinMaxScaler
from repro.obs.logging import get_logger
from repro.obs.trace import Stopwatch, get_tracer


def measure_runtime(
    dataset: str = "5gc",
    *,
    preset: str | ExperimentPreset | None = None,
    shots: int = 10,
    n_inference_samples: int = 64,
    random_state: int = 0,
    n_jobs: int = 1,
) -> dict:
    """Wall-clock seconds for FS discovery, GAN training and per-sample inference."""
    preset = preset if isinstance(preset, ExperimentPreset) else get_preset(preset)
    tracer = get_tracer()
    logger = get_logger("repro.experiments.runtime")
    bench = make_benchmark(dataset, preset, random_state=random_state)
    X_few, _, X_test, _ = bench.few_shot_split(shots, random_state=random_state)
    scaler = MinMaxScaler().fit(bench.X_source)
    Xs = scaler.transform(bench.X_source)

    with tracer.span("runtime.fs", dataset=dataset, shots=shots), Stopwatch() as sw:
        sep = FeatureSeparator(FSConfig(n_jobs=n_jobs)).fit(Xs, scaler.transform(X_few))
    fs_seconds = sw.seconds
    logger.info("FS discovery: %.2f s (%d CI tests)", fs_seconds, sep.result_.n_tests)

    X_inv, X_var = sep.split(Xs)
    rec = VariantReconstructor(
        ReconstructionConfig(
            strategy="gan",
            noise_dim=preset.gan_noise_dim,
            hidden_size=preset.gan_hidden,
            epochs=preset.gan_epochs,
        ),
        random_state=random_state,
    )
    with tracer.span("runtime.gan", epochs=preset.gan_epochs), Stopwatch() as sw:
        rec.fit(X_inv, X_var, bench.y_source)
    gan_seconds = sw.seconds
    logger.info("GAN training: %.2f s (%d epochs)", gan_seconds, preset.gan_epochs)

    Xt = scaler.transform(X_test[:n_inference_samples])
    inv_block, _ = sep.split(Xt)
    with tracer.span("runtime.inference", n_samples=len(inv_block)), Stopwatch() as sw:
        for row in inv_block:  # one sample at a time, as in online inference
            rec.reconstruct(row[None, :])
    per_sample = sw.seconds / len(inv_block)
    logger.info("inference: %.2f ms/sample", 1000 * per_sample)

    return {
        "dataset": dataset,
        "preset": preset.name,
        "n_features": bench.n_features,
        "n_variant": sep.n_variant_,
        "n_ci_tests": int(sep.result_.n_tests),
        "fs_seconds": fs_seconds,
        "gan_train_seconds": gan_seconds,
        "inference_seconds_per_sample": per_sample,
    }
