"""Running-time measurements of §VI-D.

The paper reports: FS ≈ 42 min (5GC) / 35 min (5GIPC) dominated by CI
tests; GAN training ≈ 12 / 7 min; inference ≈ 0.05 s per sample (one
generator forward pass).  This module measures the same three quantities on
the configured preset so the scaling story (FS > GAN training ≫ inference)
can be checked at any size.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import FSConfig, ReconstructionConfig
from repro.core.feature_separation import FeatureSeparator
from repro.core.reconstruction import VariantReconstructor
from repro.experiments.presets import ExperimentPreset, get_preset
from repro.experiments.runner import make_benchmark
from repro.ml.preprocessing import MinMaxScaler


def measure_runtime(
    dataset: str = "5gc",
    *,
    preset: str | ExperimentPreset | None = None,
    shots: int = 10,
    n_inference_samples: int = 64,
    random_state: int = 0,
) -> dict:
    """Wall-clock seconds for FS discovery, GAN training and per-sample inference."""
    preset = preset if isinstance(preset, ExperimentPreset) else get_preset(preset)
    bench = make_benchmark(dataset, preset, random_state=random_state)
    X_few, _, X_test, _ = bench.few_shot_split(shots, random_state=random_state)
    scaler = MinMaxScaler().fit(bench.X_source)
    Xs = scaler.transform(bench.X_source)

    t0 = time.perf_counter()
    sep = FeatureSeparator(FSConfig()).fit(Xs, scaler.transform(X_few))
    fs_seconds = time.perf_counter() - t0

    X_inv, X_var = sep.split(Xs)
    rec = VariantReconstructor(
        ReconstructionConfig(
            strategy="gan",
            noise_dim=preset.gan_noise_dim,
            hidden_size=preset.gan_hidden,
            epochs=preset.gan_epochs,
        ),
        random_state=random_state,
    )
    t0 = time.perf_counter()
    rec.fit(X_inv, X_var, bench.y_source)
    gan_seconds = time.perf_counter() - t0

    Xt = scaler.transform(X_test[:n_inference_samples])
    inv_block, _ = sep.split(Xt)
    t0 = time.perf_counter()
    for row in inv_block:  # one sample at a time, as in online inference
        rec.reconstruct(row[None, :])
    per_sample = (time.perf_counter() - t0) / len(inv_block)

    return {
        "dataset": dataset,
        "preset": preset.name,
        "n_features": bench.n_features,
        "n_variant": sep.n_variant_,
        "n_ci_tests": int(sep.result_.n_tests),
        "fs_seconds": fs_seconds,
        "gan_train_seconds": gan_seconds,
        "inference_seconds_per_sample": per_sample,
    }
