"""Formatting helpers rendering results in the paper's table layouts."""

from __future__ import annotations

import numpy as np

from repro.experiments.models import MODEL_NAMES
from repro.experiments.runner import CellResult

#: display names and grouping, in Table I row order
_TABLE1_ROWS = (
    ("Causal Learning", "fs+gan", "FS+GAN (ours)"),
    ("Causal Learning", "fs", "FS (ours)"),
    ("Causal Learning", "cmt", "CMT"),
    ("Causal Learning", "icd", "ICD"),
    ("Naive Baselines", "srconly", "SrcOnly"),
    ("Naive Baselines", "taronly", "TarOnly"),
    ("Naive Baselines", "s&t", "S&T"),
    ("Naive Baselines", "fine-tune", "Fine-tune"),
    ("Domain Independent", "coral", "CORAL"),
    ("Domain Independent", "dann", "DANN"),
    ("Domain Independent", "scl", "SCL"),
    ("Few-shot Learning", "matchnet", "MatchNet"),
    ("Few-shot Learning", "protonet", "ProtoNet"),
)


def _lookup(results: list[CellResult], method: str, model: str, shots: int):
    for cell in results:
        if cell.method == method and cell.model == model and cell.shots == shots:
            return cell
    return None


def format_table1(results: list[CellResult], *, dataset: str = "") -> str:
    """Render Table I: methods × (shots × models), F1 × 100."""
    shots_values = sorted({cell.shots for cell in results})
    models = [m for m in MODEL_NAMES if any(c.model == m for c in results)]
    header1 = f"{'Group':<20}{'Method':<16}"
    header2 = f"{'':<20}{'':<16}"
    for shots in shots_values:
        span = max(1, len(models)) * 7
        header1 += f"| {'#shots=' + str(shots):<{span - 2}} "
        for model in models:
            header2 += f"| {model:>5}" if model == models[0] else f"{model:>7}"
        header2 += " "
    lines = [f"Table I — F1-scores on the {dataset} target test data",
             header1, header2, "-" * len(header1)]
    for group, key, label in _TABLE1_ROWS:
        row_cells = [c for c in results if c.method == key]
        if not row_cells:
            continue
        line = f"{group:<20}{label:<16}"
        for shots in shots_values:
            if any(c.model == "-" for c in row_cells):
                cell = _lookup(results, key, "-", shots)
                value = f"{100 * cell.f1_mean:5.1f}" if cell else "    -"
                line += f"| {value:<{max(1, len(models)) * 7 - 2}} "
            else:
                line += "| "
                for i, model in enumerate(models):
                    cell = _lookup(results, key, model, shots)
                    value = f"{100 * cell.f1_mean:5.1f}" if cell else "    -"
                    line += value if i == 0 else f"  {value}"
                line += " "
        lines.append(line)
    return "\n".join(lines)


def format_ablation(results: list[CellResult], *, dataset: str = "") -> str:
    """Render Table II: reconstruction strategies × shots."""
    shots_values = sorted({cell.shots for cell in results})
    methods = []
    for cell in results:
        if cell.method not in methods:
            methods.append(cell.method)
    lines = [
        f"Table II — reconstruction-strategy ablation ({dataset}, TNet)",
        f"{'Method':<16}" + "".join(f"{'#shots=' + str(s):>12}" for s in shots_values),
    ]
    for method in methods:
        line = f"{method:<16}"
        for shots in shots_values:
            cell = next(
                (c for c in results if c.method == method and c.shots == shots), None
            )
            line += f"{100 * cell.f1_mean:>12.1f}" if cell else f"{'-':>12}"
        lines.append(line)
    return "\n".join(lines)


def format_multitarget(result: dict) -> str:
    """Render Table III: adapters × targets × shots."""
    scores = result["scores"]
    shots_values = sorted({key[2] for key in scores})
    lines = [
        "Table III — F1 of the source-trained TNet under cross-adapter DA",
        f"{'DA Method':<12}"
        + "".join(f"{'T1 s=' + str(s):>10}" for s in shots_values)
        + "".join(f"{'T2 s=' + str(s):>10}" for s in shots_values),
    ]
    for adapter in (1, 2):
        line = f"FS+GAN_{adapter:<5}"
        for target in (1, 2):
            for shots in shots_values:
                line += f"{100 * scores[(adapter, target, shots)]:>10.1f}"
        lines.append(line)
    lines.append(f"variant-set Jaccard overlap: {result['overlap']:.2f}")
    return "\n".join(lines)


def format_variant_counts(result: dict) -> str:
    """Render the §VI-C variant-count progression."""
    lines = [
        f"FS-identified domain-variant features ({result['dataset']}, "
        f"{result['n_true_variant']} ground-truth targets)",
        f"{'shots':>6}{'#variant':>10}{'recall':>9}{'precision':>11}",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row['shots']:>6}{row['n_variant_mean']:>10.1f}"
            f"{row['recall']:>9.2f}{row['precision']:>11.2f}"
        )
    return "\n".join(lines)


def format_runtime(result: dict) -> str:
    """Render the §VI-D running-time summary."""
    return "\n".join(
        [
            f"Running time ({result['dataset']}, preset={result['preset']}, "
            f"{result['n_features']} features, {result['n_variant']} variant)",
            f"  FS discovery:   {result['fs_seconds']:8.2f} s "
            f"({result['n_ci_tests']} CI tests)",
            f"  GAN training:   {result['gan_train_seconds']:8.2f} s",
            f"  inference:      {1000 * result['inference_seconds_per_sample']:8.2f} ms/sample",
        ]
    )


def format_bench(record: dict) -> str:
    """Render the ``repro bench`` before/after summary."""
    before, after = record["before"], record["after"]
    lines = [
        f"FS CI-engine benchmark ({record['dataset']}, "
        f"preset={record['preset']}, seed={record['seed']}, "
        f"{record['n_features']} features, n_jobs={record['n_jobs']})",
        f"  reference loop: {before['fs_seconds']:8.2f} s "
        f"({before['n_ci_tests']} CI tests, {before['n_variant']} variant)",
        f"  batched engine: {after['fs_seconds']:8.2f} s "
        f"({after['n_ci_tests']} CI tests, {after['n_variant']} variant)",
        f"  speedup:        {record['speedup']:8.2f}x "
        + ("(results identical)" if record["equivalent"] else "(RESULTS DIFFER)"),
    ]
    if record.get("gan_train_seconds") is not None:
        lines.append(f"  GAN training:   {record['gan_train_seconds']:8.2f} s")
    if record.get("inference_seconds_per_sample") is not None:
        lines.append(
            f"  inference:      "
            f"{1000 * record['inference_seconds_per_sample']:8.2f} ms/sample"
        )
    return "\n".join(lines)


def format_bench_wide(records: list[dict]) -> str:
    """Render the ``repro bench --suite fs --wide`` scaling curve."""
    lines = [
        "Wide-scale FS scaling (pre-PR engine vs wide path, "
        "min-of-rounds wall clock)",
        "  width | before (s) | after (s) | speedup | tests before/after | "
        "equivalent",
    ]
    for record in records:
        before, after = record["before"], record["after"]
        lines.append(
            f"  {record['n_features']:5d} | {before['fs_seconds']:10.2f} | "
            f"{after['fs_seconds']:9.2f} | {record['speedup']:6.2f}x | "
            f"{before['n_ci_tests']:6d} / {after['n_ci_tests']:6d}     | "
            + ("yes" if record["equivalent"] else "NO — RESULTS DIFFER")
        )
    return "\n".join(lines)


def format_bench_warm(records: list[dict]) -> str:
    """Render the ``repro bench --suite fs --warm`` re-discovery summary."""
    lines = [
        "Warm-start FS re-discovery (cold discover vs rediscover from the "
        "prior run's WarmState, min-of-rounds wall clock)",
        "  width | cold (s) | warm (s) | speedup | tests cold/warm | "
        "new rows | equivalent",
    ]
    for record in records:
        before, after = record["before"], record["after"]
        lines.append(
            f"  {record['n_features']:5d} | {before['fs_seconds']:8.2f} | "
            f"{after['fs_seconds']:8.2f} | {record['speedup']:6.2f}x | "
            f"{before['n_ci_tests']:6d} / {after['n_ci_tests']:6d}  | "
            f"{record['n_new_rows']:8d} | "
            + ("yes" if record["equivalent"] else "NO — RESULTS DIFFER")
        )
    return "\n".join(lines)


def format_bench_nn(record: dict) -> str:
    """Render the ``repro bench --suite nn`` fused-engine summary."""
    before, after = record["before"], record["after"]
    serve, f32 = record["serve"], record["float32"]
    lines = [
        f"NN fused-engine benchmark ({record['dataset']}, "
        f"preset={record['preset']}, seed={record['seed']}, "
        f"{record['n_invariant']}+{record['n_variant']} features, "
        f"hidden={record['hidden_size']}, {record['epochs']} epochs)",
        f"  reference train: {before['train_seconds']:8.2f} s "
        f"({before['epochs_per_sec']:.1f} epochs/s)",
        f"  fused train:     {after['train_seconds']:8.2f} s "
        f"({after['epochs_per_sec']:.1f} epochs/s)",
        f"  train speedup:   {record['speedup']:8.2f}x "
        + ("(float64 bit-identical)" if record["equivalent"] else "(RESULTS DIFFER)"),
        f"  serve (n_draws={serve['n_draws']}): "
        f"{before['serve_seconds'] * 1000:7.2f} ms -> "
        f"{after['serve_seconds'] * 1000:7.2f} ms "
        f"({serve['speedup']:.2f}x, max|diff| {serve['max_abs_diff']:.1e}"
        + (")" if serve["equivalent"] else ", OUT OF TOLERANCE)"),
        f"  float32 train:   {f32['train_seconds']:8.2f} s "
        f"({f32['speedup_vs_float64']:.2f}x vs float64 fused)",
        f"  float32 serving: max|diff| {f32['serve_max_abs_diff']:.2e} "
        + ("(within tolerance)" if f32["within_tolerance"] else "(OUT OF TOLERANCE)"),
    ]
    return "\n".join(lines)


def summarize_improvement(results: list[CellResult]) -> dict:
    """The paper's headline metric: drift-mitigation improvement over SrcOnly.

    Improvement is measured as (F1_method − F1_SrcOnly), compared between
    FS+GAN and the best non-ours method (§VI-B's 52% claim).
    """
    def mean_f1(method: str) -> float:
        vals = [c.f1_mean for c in results if c.method == method]
        return float(np.mean(vals)) if vals else float("nan")

    src = mean_f1("srconly")
    ours = mean_f1("fs+gan")
    others = {
        c.method for c in results
        if c.method not in ("fs+gan", "fs", "srconly")
    }
    best_other = max(others, key=mean_f1) if others else None
    other = mean_f1(best_other) if best_other else float("nan")
    gain_ours = ours - src
    gain_other = other - src
    return {
        "srconly_f1": src,
        "fsgan_f1": ours,
        "best_other": best_other,
        "best_other_f1": other,
        "fsgan_gain": gain_ours,
        "best_other_gain": gain_other,
        "relative_improvement": (
            (gain_ours - gain_other) / gain_other if gain_other > 0 else float("nan")
        ),
    }


def format_bench_serve(record: dict) -> str:
    """Render the ``repro bench --suite serve`` compiled-plan summary."""
    before, after = record["before"], record["after"]
    lines = [
        f"Serve benchmark ({record['dataset']}, preset={record['preset']}, "
        f"seed={record['seed']}, model={record['model']}, "
        f"{record['n_samples']}x{record['n_features']} batch, "
        f"n_draws={record['n_draws']})",
        f"  naive pipeline:  {before['serve_seconds'] * 1000:8.2f} ms "
        f"({before['rows_per_sec']:.0f} rows/s)",
        f"  compiled plan:   {after['serve_seconds'] * 1000:8.2f} ms "
        f"({after['rows_per_sec']:.0f} rows/s)",
        f"  speedup:         {record['speedup']:8.2f}x "
        + (
            "(float64 bit-identical)"
            if record["equivalent"]
            else f"(max|diff| {record['max_abs_diff']:.2e} — RESULTS DIFFER)"
        ),
    ]
    telemetry = record.get("telemetry")
    if telemetry:
        lines.append(
            f"  telemetry:       metrics on {100 * telemetry['metrics_overhead']:+.1f}%, "
            f"scraped @1Hz {100 * telemetry['scraped_overhead']:+.1f}% "
            f"vs disabled"
        )
    return "\n".join(lines)


def format_bench_serve_sustained(record: dict) -> str:
    """Render the ``repro bench --suite serve --sustained`` daemon summary."""
    before, after = record["before"], record["after"]
    open_loop = record["open_loop"]
    latency = open_loop["latency"]
    lines = [
        f"Sustained serve benchmark ({record['dataset']}, "
        f"base preset={record['base_preset']}, seed={record['seed']}, "
        f"{record['tenants']} tenants, {record['clients']} clients, "
        f"{record['duration']:.1f}s per pass, "
        f"capacity={record['micro_batch_rows']} rows)",
        f"  per-request daemon: {before['rows_per_sec']:10.0f} rows/s "
        f"({before['requests_per_sec']:.0f} req/s, closed loop)",
        f"  micro-batched:      {after['rows_per_sec']:10.0f} rows/s "
        f"({after['requests_per_sec']:.0f} req/s, "
        f"mean fill {after['mean_batch_requests']:.1f} req/batch)",
        f"  speedup:            {record['speedup']:10.2f}x "
        + (
            "(replay bit-identical)"
            if record["equivalent"]
            else f"(max|diff| {record['max_abs_diff']:.2e} — RESULTS DIFFER)"
        ),
        f"  open loop @ {open_loop['offered_rate']:.0f} req/s: achieved "
        f"{open_loop['achieved_rps']:.0f} req/s "
        f"({open_loop['rows_per_sec']:.0f} rows/s, "
        f"{open_loop['requests']} requests, {open_loop['errors']} errors)",
        f"  latency:            p50={1e3 * latency['p50']:7.2f} ms  "
        f"p90={1e3 * latency['p90']:7.2f} ms  "
        f"p99={1e3 * latency['p99']:7.2f} ms",
    ]
    return "\n".join(lines)


def format_loadgen(result: dict) -> str:
    """Render a ``repro loadgen`` traffic summary."""
    lines = [
        f"Loadgen ({result['mode']} loop, {result['clients']} clients, "
        f"{result['elapsed_seconds']:.2f}s elapsed, seed={result['seed']})",
        f"  requests: {result['requests']} ({result['rows']} rows, "
        f"{result['errors']} errors)",
        f"  throughput: {result['achieved_rps']:.0f} req/s, "
        f"{result['rows_per_sec']:.0f} rows/s"
        + (
            f" (offered {result['offered_rate']:.0f} req/s)"
            if "offered_rate" in result else ""
        ),
    ]
    latency = result.get("latency") or {}
    if latency.get("count"):
        lines.append(
            f"  latency: p50={1e3 * latency['p50']:7.2f} ms  "
            f"p90={1e3 * latency['p90']:7.2f} ms  "
            f"p99={1e3 * latency['p99']:7.2f} ms  "
            f"max={1e3 * latency['max']:7.2f} ms"
        )
    for tenant in sorted(result.get("per_tenant", {})):
        stats = result["per_tenant"][tenant]
        if not stats["requests"]:
            continue
        lines.append(
            f"    {tenant:<12} {stats['requests']:6d} req "
            f"{stats['rows']:7d} rows  p50={1e3 * stats['p50']:7.2f} ms  "
            f"p99={1e3 * stats['p99']:7.2f} ms"
        )
    if "first_error" in result:
        lines.append(f"  first error: {result['first_error']}")
    return "\n".join(lines)
