"""Sensitivity analyses of §VI-C.

- :func:`variant_counts` — how many domain-variant features FS identifies as
  the target sample budget grows (the paper's 35/68/75 on 5GC and 23/31/37
  on 5GIPC progression), plus recovery quality against the generator's
  ground-truth intervention targets (only possible on our SCM substrate).
- :func:`selection_variance` — F1 variability of FS / FS+GAN across random
  target-sample selections (paper: within ±2.6 F1 points).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.presets import ExperimentPreset, get_preset
from repro.experiments.runner import SharedArtifacts, make_benchmark
from repro.ml.metrics import macro_f1


def variant_counts(
    dataset: str = "5gc",
    *,
    preset: str | ExperimentPreset | None = None,
    random_state: int = 0,
    n_jobs: int = 1,
) -> dict:
    """FS-identified variant counts (and recall/precision) per shot budget."""
    preset = preset if isinstance(preset, ExperimentPreset) else get_preset(preset)
    bench = make_benchmark(dataset, preset, random_state=random_state)
    shared = SharedArtifacts(bench, preset, random_state=random_state, n_jobs=n_jobs)
    shared.prebuild(preset.shots)
    truth = set(bench.true_variant_indices.tolist())
    rows = []
    for shots in preset.shots:
        counts, recalls, precisions = [], [], []
        for repeat in range(preset.repeats):
            sep = shared.separation(shots, repeat)
            flagged = set(sep.variant_indices_.tolist())
            counts.append(len(flagged))
            if truth:
                recalls.append(len(flagged & truth) / len(truth))
            if flagged:
                precisions.append(len(flagged & truth) / len(flagged))
        rows.append(
            {
                "shots": shots,
                "n_variant_mean": float(np.mean(counts)),
                "recall": float(np.mean(recalls)) if recalls else float("nan"),
                "precision": float(np.mean(precisions)) if precisions else float("nan"),
            }
        )
    return {
        "dataset": dataset,
        "n_true_variant": len(truth),
        "rows": rows,
    }


def selection_variance(
    dataset: str = "5gc",
    *,
    preset: str | ExperimentPreset | None = None,
    model: str = "TNet",
    shots: int = 5,
    n_selections: int = 5,
    random_state: int = 0,
) -> dict:
    """F1 spread of FS and FS+GAN over random target-sample selections."""
    preset = preset if isinstance(preset, ExperimentPreset) else get_preset(preset)
    bench = make_benchmark(dataset, preset, random_state=random_state)
    shared = SharedArtifacts(bench, preset, random_state=random_state)
    fs_scores, gan_scores = [], []
    for repeat in range(n_selections):
        _, _, X_test, y_test = shared.split(shots, repeat)
        fs_scores.append(macro_f1(y_test, shared.fs_predict(model, shots, repeat)))
        gan_scores.append(
            macro_f1(y_test, shared.fsgan_predict(model, shots, repeat))
        )
    return {
        "dataset": dataset,
        "model": model,
        "shots": shots,
        "fs": {
            "mean": float(np.mean(fs_scores)),
            "std": float(np.std(fs_scores)),
            "range": float(np.ptp(fs_scores)),
        },
        "fs+gan": {
            "mean": float(np.mean(gan_scores)),
            "std": float(np.std(gan_scores)),
            "range": float(np.ptp(gan_scores)),
        },
    }
