"""Experiment runner regenerating the paper's tables.

The runner exploits the structure of the paper's own protocol to avoid
redundant work: the FS separation and the GAN depend only on
``(dataset, shots, repeat)`` — not on the downstream model — and the
full-feature source-trained models depend only on the dataset.  Those
artifacts are computed once and shared across the Table I grid, exactly as
§VI-D describes ("The FS algorithm and GAN training are performed once and
reused").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.registry import (
    MODEL_AGNOSTIC_METHODS,
    MODEL_SPECIFIC_METHODS,
    build_method,
)
from repro.core.config import FSConfig, ReconstructionConfig
from repro.core.feature_separation import FeatureSeparator
from repro.core.reconstruction import VariantReconstructor
from repro.datasets.fivegc import make_5gc
from repro.datasets.fivegipc import make_5gipc
from repro.datasets.scm import DriftBenchmark
from repro.experiments.models import MODEL_NAMES, model_factories
from repro.experiments.presets import ExperimentPreset, get_preset
from repro.ml.metrics import macro_f1
from repro.ml.preprocessing import MinMaxScaler
from repro.obs.export import get_event_log
from repro.obs.logging import get_logger
from repro.obs.trace import get_tracer
from repro.utils.errors import ValidationError

_logger = get_logger("repro.experiments.runner")


def _cell_finished(kind: str, cell: "CellResult") -> None:
    """Per-cell progress: one log line + one structured event per grid cell."""
    _logger.info(
        "%s cell method=%s model=%s shots=%d f1=%.3f (%.2f s)",
        kind, cell.method, cell.model, cell.shots, cell.f1_mean, cell.seconds,
    )
    get_event_log().emit(
        f"runner.{kind}_cell",
        dataset=cell.dataset,
        method=cell.method,
        model=cell.model,
        shots=cell.shots,
        f1_mean=cell.f1_mean,
        seconds=cell.seconds,
    )


@dataclass
class CellResult:
    """One Table I cell: a (method, model, shots) combination."""

    dataset: str
    method: str
    model: str
    shots: int
    scores: list[float] = field(default_factory=list)
    n_variant: list[int] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def f1_mean(self) -> float:
        return float(np.mean(self.scores)) if self.scores else float("nan")

    @property
    def f1_std(self) -> float:
        return float(np.std(self.scores)) if self.scores else float("nan")


def make_benchmark(dataset: str, preset: ExperimentPreset, *, random_state=0) -> DriftBenchmark:
    """Build the configured drift benchmark for ``dataset`` ∈ {5gc, 5gipc}."""
    key = dataset.strip().lower()
    if key == "5gc":
        return make_5gc(preset.fivegc, random_state=random_state)
    if key == "5gipc":
        return make_5gipc(preset.fivegipc, random_state=random_state)
    raise ValidationError(f"unknown dataset {dataset!r}; use '5gc' or '5gipc'")


class SharedArtifacts:
    """Caches the model-independent pieces of the Table I grid."""

    def __init__(self, bench: DriftBenchmark, preset: ExperimentPreset,
                 *, random_state: int = 0) -> None:
        self.bench = bench
        self.preset = preset
        self.random_state = random_state
        self.scaler = MinMaxScaler().fit(bench.X_source)
        self.Xs = self.scaler.transform(bench.X_source)
        self._full_models: dict[str, object] = {}
        self._separations: dict[tuple, FeatureSeparator] = {}
        self._reconstructors: dict[tuple, VariantReconstructor] = {}
        self._splits: dict[tuple, tuple] = {}
        self._factories = model_factories(preset, random_state=random_state)

    def split(self, shots: int, repeat: int) -> tuple:
        """Few-shot split for (shots, repeat); cached."""
        key = (shots, repeat)
        if key not in self._splits:
            self._splits[key] = self.bench.few_shot_split(
                shots, random_state=1000 * shots + repeat + self.random_state
            )
        return self._splits[key]

    def full_model(self, model: str):
        """Source-trained model with all features (SrcOnly / FS+GAN backbone)."""
        if model not in self._full_models:
            clf = self._factories[model]()
            clf.fit(self.Xs, self.bench.y_source)
            self._full_models[model] = clf
        return self._full_models[model]

    def separation(self, shots: int, repeat: int) -> FeatureSeparator:
        """FS separation for (shots, repeat); cached."""
        key = (shots, repeat)
        if key not in self._separations:
            X_few, _, _, _ = self.split(shots, repeat)
            sep = FeatureSeparator(FSConfig())
            sep.fit(self.Xs, self.scaler.transform(X_few))
            self._separations[key] = sep
        return self._separations[key]

    def reconstructor(self, shots: int, repeat: int,
                      strategy: str = "gan") -> VariantReconstructor:
        """Reconstruction model for (shots, repeat, strategy); cached."""
        key = (shots, repeat, strategy)
        if key not in self._reconstructors:
            sep = self.separation(shots, repeat)
            X_inv, X_var = sep.split(self.Xs)
            rec = VariantReconstructor(
                ReconstructionConfig(
                    strategy=strategy,
                    noise_dim=self.preset.gan_noise_dim,
                    hidden_size=self.preset.gan_hidden,
                    epochs=self.preset.gan_epochs,
                ),
                random_state=self.random_state + repeat,
            )
            rec.fit(X_inv, X_var, self.bench.y_source)
            self._reconstructors[key] = rec
        return self._reconstructors[key]

    def fs_predict(self, model: str, shots: int, repeat: int) -> np.ndarray:
        """FS arm: train ``model`` on source invariant features, predict test."""
        sep = self.separation(shots, repeat)
        _, _, X_test, _ = self.split(shots, repeat)
        inv = sep.invariant_indices_
        clf = self._factories[model]()
        clf.fit(self.Xs[:, inv], self.bench.y_source)
        return clf.predict(self.scaler.transform(X_test)[:, inv])

    def fsgan_predict(self, model: str, shots: int, repeat: int,
                      strategy: str = "gan") -> np.ndarray:
        """FS+reconstruction arm (Eqs. 10–12) with the cached artifacts."""
        sep = self.separation(shots, repeat)
        rec = self.reconstructor(shots, repeat, strategy)
        _, _, X_test, _ = self.split(shots, repeat)
        Xt = self.scaler.transform(X_test)
        X_inv, _ = sep.split(Xt)
        X_var_hat = rec.reconstruct(X_inv)
        X_hat = sep.merge(X_inv, X_var_hat)
        return self.full_model(model).predict(X_hat)

    def srconly_predict(self, model: str, shots: int, repeat: int) -> np.ndarray:
        """SrcOnly arm: the full source model applied to raw drifted data."""
        _, _, X_test, _ = self.split(shots, repeat)
        return self.full_model(model).predict(self.scaler.transform(X_test))


def run_table1(
    dataset: str = "5gc",
    *,
    preset: str | ExperimentPreset | None = None,
    methods: tuple[str, ...] | None = None,
    models: tuple[str, ...] | None = None,
    random_state: int = 0,
) -> list[CellResult]:
    """Run the Table I grid for one dataset.

    Returns one :class:`CellResult` per (method, model, shots) combination
    (model-specific methods get a single pseudo-model column, as in the
    paper's merged cells).
    """
    preset = preset if isinstance(preset, ExperimentPreset) else get_preset(preset)
    methods = tuple(m.lower() for m in (methods or (MODEL_AGNOSTIC_METHODS + MODEL_SPECIFIC_METHODS)))
    models = tuple(models or MODEL_NAMES)
    bench = make_benchmark(dataset, preset, random_state=random_state)
    shared = SharedArtifacts(bench, preset, random_state=random_state)
    factories = model_factories(preset, random_state=random_state)
    results: list[CellResult] = []

    tracer = get_tracer()
    for method in methods:
        is_specific = method in MODEL_SPECIFIC_METHODS
        method_models = ("-",) if is_specific else models
        for model in method_models:
            for shots in preset.shots:
                cell = CellResult(dataset=dataset, method=method, model=model, shots=shots)
                t0 = time.time()
                with tracer.span(
                    "runner.cell", method=method, model=model, shots=shots
                ):
                    for repeat in range(preset.repeats):
                        X_few, y_few, X_test, y_test = shared.split(shots, repeat)
                        if method == "srconly":
                            y_pred = shared.srconly_predict(model, shots, repeat)
                        elif method == "fs":
                            y_pred = shared.fs_predict(model, shots, repeat)
                            cell.n_variant.append(shared.separation(shots, repeat).n_variant_)
                        elif method == "fs+gan":
                            y_pred = shared.fsgan_predict(model, shots, repeat)
                            cell.n_variant.append(shared.separation(shots, repeat).n_variant_)
                        else:
                            kwargs = _method_kwargs(method, preset)
                            approach = build_method(
                                method,
                                None if is_specific else factories[model],
                                random_state=random_state + repeat,
                                **kwargs,
                            )
                            approach.fit(bench.X_source, bench.y_source, X_few, y_few)
                            y_pred = approach.predict(X_test)
                        cell.scores.append(macro_f1(y_test, y_pred))
                cell.seconds = time.time() - t0
                _cell_finished("table1", cell)
                results.append(cell)
    return results


def _method_kwargs(method: str, preset: ExperimentPreset) -> dict:
    """Per-method budget overrides derived from the preset."""
    if method in ("dann", "scl"):
        return {"epochs": preset.baseline_epochs}
    if method in ("matchnet", "protonet"):
        return {"episodes": preset.episodes}
    if method == "fine-tune":
        return {
            "epochs": preset.baseline_epochs,
            "fine_tune_epochs": preset.baseline_epochs,
        }
    return {}


def run_ablation(
    dataset: str = "5gc",
    *,
    preset: str | ExperimentPreset | None = None,
    model: str = "TNet",
    strategies: tuple[str, ...] = ("gan", "nocond", "vae", "autoencoder"),
    random_state: int = 0,
) -> list[CellResult]:
    """Table II: reconstruction-strategy ablation with one classifier."""
    preset = preset if isinstance(preset, ExperimentPreset) else get_preset(preset)
    bench = make_benchmark(dataset, preset, random_state=random_state)
    shared = SharedArtifacts(bench, preset, random_state=random_state)
    label = {"gan": "FS+GAN", "nocond": "FS+NoCond", "vae": "FS+VAE",
             "autoencoder": "FS+VanillaAE"}
    results = []
    tracer = get_tracer()
    for strategy in strategies:
        for shots in preset.shots:
            cell = CellResult(dataset=dataset, method=label[strategy],
                              model=model, shots=shots)
            t0 = time.time()
            with tracer.span("runner.cell", strategy=strategy, shots=shots):
                for repeat in range(preset.repeats):
                    _, _, X_test, y_test = shared.split(shots, repeat)
                    y_pred = shared.fsgan_predict(model, shots, repeat, strategy=strategy)
                    cell.scores.append(macro_f1(y_test, y_pred))
            cell.seconds = time.time() - t0
            _cell_finished("ablation", cell)
            results.append(cell)
    return results
