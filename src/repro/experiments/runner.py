"""Experiment runner regenerating the paper's tables.

The runner exploits the structure of the paper's own protocol to avoid
redundant work: the FS separation and the GAN depend only on
``(dataset, shots, repeat)`` — not on the downstream model — and the
full-feature source-trained models depend only on the dataset.  Those
artifacts are computed once and shared across the Table I grid, exactly as
§VI-D describes ("The FS algorithm and GAN training are performed once and
reused").
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.registry import (
    MODEL_AGNOSTIC_METHODS,
    MODEL_SPECIFIC_METHODS,
    build_method,
)
from repro.causal.engine import resolve_n_jobs
from repro.causal.fnode import FNodeDiscovery
from repro.core.config import FSConfig, ReconstructionConfig
from repro.core.feature_separation import FeatureSeparator
from repro.core.reconstruction import VariantReconstructor
from repro.datasets.fivegc import make_5gc
from repro.datasets.fivegipc import make_5gipc
from repro.datasets.scm import DriftBenchmark
from repro.experiments.models import MODEL_NAMES, model_factories
from repro.experiments.presets import ExperimentPreset, get_preset
from repro.ml.metrics import macro_f1
from repro.ml.preprocessing import MinMaxScaler
from repro.obs.export import get_event_log
from repro.obs.logging import get_logger
from repro.obs.trace import get_tracer
from repro.utils.errors import ValidationError

_logger = get_logger("repro.experiments.runner")


def _cell_finished(kind: str, cell: "CellResult") -> None:
    """Per-cell progress: one log line + one structured event per grid cell."""
    _logger.info(
        "%s cell method=%s model=%s shots=%d f1=%.3f (%.2f s)",
        kind, cell.method, cell.model, cell.shots, cell.f1_mean, cell.seconds,
    )
    get_event_log().emit(
        f"runner.{kind}_cell",
        dataset=cell.dataset,
        method=cell.method,
        model=cell.model,
        shots=cell.shots,
        f1_mean=cell.f1_mean,
        seconds=cell.seconds,
    )


@dataclass
class CellResult:
    """One Table I cell: a (method, model, shots) combination."""

    dataset: str
    method: str
    model: str
    shots: int
    scores: list[float] = field(default_factory=list)
    n_variant: list[int] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def f1_mean(self) -> float:
        return float(np.mean(self.scores)) if self.scores else float("nan")

    @property
    def f1_std(self) -> float:
        return float(np.std(self.scores)) if self.scores else float("nan")


def make_benchmark(dataset: str, preset: ExperimentPreset, *, random_state=0) -> DriftBenchmark:
    """Build the configured drift benchmark for ``dataset`` ∈ {5gc, 5gipc}."""
    key = dataset.strip().lower()
    if key == "5gc":
        return make_5gc(preset.fivegc, random_state=random_state)
    if key == "5gipc":
        return make_5gipc(preset.fivegipc, random_state=random_state)
    raise ValidationError(f"unknown dataset {dataset!r}; use '5gc' or '5gipc'")


class SharedArtifacts:
    """Caches the model-independent pieces of the Table I grid.

    With ``n_jobs > 1``, :meth:`prebuild` computes the per-``(shots,
    repeat)`` artifacts — FS separations and, optionally, reconstruction
    models — across a process pool before the grid loop starts; the lazy
    accessors then serve cache hits.  Workers return plain picklable
    results, so parallel prebuilds reproduce the serial artifacts exactly
    (CI-test metrics/events recorded inside workers are not propagated —
    use ``n_jobs=1`` or ``FSConfig(n_jobs=...)`` for full FS telemetry).
    """

    def __init__(self, bench: DriftBenchmark, preset: ExperimentPreset,
                 *, random_state: int = 0, n_jobs: int = 1) -> None:
        self.bench = bench
        self.preset = preset
        self.random_state = random_state
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.fs_config = FSConfig()
        self.scaler = MinMaxScaler().fit(bench.X_source)
        self.Xs = self.scaler.transform(bench.X_source)
        self._full_models: dict[str, object] = {}
        self._separations: dict[tuple, FeatureSeparator] = {}
        self._reconstructors: dict[tuple, VariantReconstructor] = {}
        self._splits: dict[tuple, tuple] = {}
        self._factories = model_factories(preset, random_state=random_state)

    def prebuild(self, shots_list=None, *, strategies: tuple[str, ...] = ()) -> None:
        """Fill the (shots, repeat) artifact caches with a process pool.

        No-op when ``n_jobs == 1`` or everything is already cached.  Each
        worker runs FS discovery (and GAN/VAE/AE training for ``strategies``)
        with the same configs and seeds as the lazy serial path, so the
        cached artifacts are identical either way.
        """
        if self.n_jobs <= 1:
            return
        shots_list = tuple(shots_list) if shots_list is not None else self.preset.shots
        tasks = []
        for shots in shots_list:
            for repeat in range(self.preset.repeats):
                need = tuple(
                    s for s in strategies
                    if (shots, repeat, s) not in self._reconstructors
                )
                if need or (shots, repeat) not in self._separations:
                    X_few, _, _, _ = self.split(shots, repeat)
                    tasks.append((
                        shots, repeat, self.scaler.transform(X_few), need,
                        self.random_state + repeat,
                    ))
        if not tasks:
            return
        rec_params = {
            "noise_dim": self.preset.gan_noise_dim,
            "hidden_size": self.preset.gan_hidden,
            "epochs": self.preset.gan_epochs,
        }
        with get_tracer().span(
            "runner.prebuild", n_tasks=len(tasks), n_jobs=self.n_jobs
        ):
            with ProcessPoolExecutor(
                max_workers=min(self.n_jobs, len(tasks)),
                initializer=_init_artifact_worker,
                initargs=(self.Xs, self.bench.y_source, self.fs_config, rec_params),
            ) as pool:
                for shots, repeat, result, recs in pool.map(
                    _build_artifacts_worker, tasks
                ):
                    self._separations.setdefault(
                        (shots, repeat),
                        FeatureSeparator.from_result(
                            result, self.Xs.shape[1], self.fs_config
                        ),
                    )
                    for strategy, rec in recs.items():
                        self._reconstructors[(shots, repeat, strategy)] = rec

    def split(self, shots: int, repeat: int) -> tuple:
        """Few-shot split for (shots, repeat); cached."""
        key = (shots, repeat)
        if key not in self._splits:
            self._splits[key] = self.bench.few_shot_split(
                shots, random_state=1000 * shots + repeat + self.random_state
            )
        return self._splits[key]

    def full_model(self, model: str):
        """Source-trained model with all features (SrcOnly / FS+GAN backbone)."""
        if model not in self._full_models:
            clf = self._factories[model]()
            clf.fit(self.Xs, self.bench.y_source)
            self._full_models[model] = clf
        return self._full_models[model]

    def separation(self, shots: int, repeat: int) -> FeatureSeparator:
        """FS separation for (shots, repeat); cached."""
        key = (shots, repeat)
        if key not in self._separations:
            X_few, _, _, _ = self.split(shots, repeat)
            sep = FeatureSeparator(self.fs_config)
            sep.fit(self.Xs, self.scaler.transform(X_few))
            self._separations[key] = sep
        return self._separations[key]

    def reconstructor(self, shots: int, repeat: int,
                      strategy: str = "gan") -> VariantReconstructor:
        """Reconstruction model for (shots, repeat, strategy); cached."""
        key = (shots, repeat, strategy)
        if key not in self._reconstructors:
            sep = self.separation(shots, repeat)
            X_inv, X_var = sep.split(self.Xs)
            rec = VariantReconstructor(
                ReconstructionConfig(
                    strategy=strategy,
                    noise_dim=self.preset.gan_noise_dim,
                    hidden_size=self.preset.gan_hidden,
                    epochs=self.preset.gan_epochs,
                ),
                random_state=self.random_state + repeat,
            )
            rec.fit(X_inv, X_var, self.bench.y_source)
            self._reconstructors[key] = rec
        return self._reconstructors[key]

    def fs_predict(self, model: str, shots: int, repeat: int) -> np.ndarray:
        """FS arm: train ``model`` on source invariant features, predict test."""
        sep = self.separation(shots, repeat)
        _, _, X_test, _ = self.split(shots, repeat)
        inv = sep.invariant_indices_
        clf = self._factories[model]()
        clf.fit(self.Xs[:, inv], self.bench.y_source)
        return clf.predict(self.scaler.transform(X_test)[:, inv])

    def fsgan_predict(self, model: str, shots: int, repeat: int,
                      strategy: str = "gan") -> np.ndarray:
        """FS+reconstruction arm (Eqs. 10–12) with the cached artifacts."""
        sep = self.separation(shots, repeat)
        rec = self.reconstructor(shots, repeat, strategy)
        _, _, X_test, _ = self.split(shots, repeat)
        Xt = self.scaler.transform(X_test)
        X_inv, _ = sep.split(Xt)
        X_var_hat = rec.reconstruct(X_inv)
        X_hat = sep.merge(X_inv, X_var_hat)
        return self.full_model(model).predict(X_hat)

    def srconly_predict(self, model: str, shots: int, repeat: int) -> np.ndarray:
        """SrcOnly arm: the full source model applied to raw drifted data."""
        _, _, X_test, _ = self.split(shots, repeat)
        return self.full_model(model).predict(self.scaler.transform(X_test))


# ---------------------------------------------------------------------------
# process-pool plumbing for SharedArtifacts.prebuild: the source matrix and
# configs ship once per worker (initializer), each task only carries its
# few-shot slice

_ARTIFACT_CTX: dict = {}


def _init_artifact_worker(Xs, y_source, fs_config, rec_params) -> None:
    _ARTIFACT_CTX["Xs"] = Xs
    _ARTIFACT_CTX["y_source"] = y_source
    _ARTIFACT_CTX["fs_config"] = fs_config
    _ARTIFACT_CTX["rec_params"] = rec_params


def _build_artifacts_worker(task):
    """One (shots, repeat): FS discovery plus the requested reconstructors."""
    shots, repeat, X_few_scaled, strategies, seed = task
    cfg = _ARTIFACT_CTX["fs_config"]
    Xs = _ARTIFACT_CTX["Xs"]
    discovery = FNodeDiscovery(
        alpha=cfg.alpha,
        max_parents=cfg.max_parents,
        max_cond_size=cfg.max_cond_size,
        min_correlation=cfg.min_correlation,
    )
    result = discovery.discover(Xs, X_few_scaled)
    recs = {}
    if strategies:
        sep = FeatureSeparator.from_result(result, Xs.shape[1], cfg)
        X_inv, X_var = sep.split(Xs)
        for strategy in strategies:
            rec = VariantReconstructor(
                ReconstructionConfig(strategy=strategy, **_ARTIFACT_CTX["rec_params"]),
                random_state=seed,
            )
            rec.fit(X_inv, X_var, _ARTIFACT_CTX["y_source"])
            recs[strategy] = rec
    return shots, repeat, result, recs


def run_table1(
    dataset: str = "5gc",
    *,
    preset: str | ExperimentPreset | None = None,
    methods: tuple[str, ...] | None = None,
    models: tuple[str, ...] | None = None,
    random_state: int = 0,
    n_jobs: int = 1,
) -> list[CellResult]:
    """Run the Table I grid for one dataset.

    Returns one :class:`CellResult` per (method, model, shots) combination
    (model-specific methods get a single pseudo-model column, as in the
    paper's merged cells).  ``n_jobs > 1`` prebuilds the shared FS/GAN
    artifacts across a process pool before the grid loop.
    """
    preset = preset if isinstance(preset, ExperimentPreset) else get_preset(preset)
    methods = tuple(m.lower() for m in (methods or (MODEL_AGNOSTIC_METHODS + MODEL_SPECIFIC_METHODS)))
    models = tuple(models or MODEL_NAMES)
    bench = make_benchmark(dataset, preset, random_state=random_state)
    shared = SharedArtifacts(bench, preset, random_state=random_state, n_jobs=n_jobs)
    if {"fs", "fs+gan"} & set(methods):
        shared.prebuild(
            preset.shots,
            strategies=("gan",) if "fs+gan" in methods else (),
        )
    factories = model_factories(preset, random_state=random_state)
    results: list[CellResult] = []

    tracer = get_tracer()
    for method in methods:
        is_specific = method in MODEL_SPECIFIC_METHODS
        method_models = ("-",) if is_specific else models
        for model in method_models:
            for shots in preset.shots:
                cell = CellResult(dataset=dataset, method=method, model=model, shots=shots)
                t0 = time.time()
                with tracer.span(
                    "runner.cell", method=method, model=model, shots=shots
                ):
                    for repeat in range(preset.repeats):
                        X_few, y_few, X_test, y_test = shared.split(shots, repeat)
                        if method == "srconly":
                            y_pred = shared.srconly_predict(model, shots, repeat)
                        elif method == "fs":
                            y_pred = shared.fs_predict(model, shots, repeat)
                            cell.n_variant.append(shared.separation(shots, repeat).n_variant_)
                        elif method == "fs+gan":
                            y_pred = shared.fsgan_predict(model, shots, repeat)
                            cell.n_variant.append(shared.separation(shots, repeat).n_variant_)
                        else:
                            kwargs = _method_kwargs(method, preset)
                            approach = build_method(
                                method,
                                None if is_specific else factories[model],
                                random_state=random_state + repeat,
                                **kwargs,
                            )
                            approach.fit(bench.X_source, bench.y_source, X_few, y_few)
                            y_pred = approach.predict(X_test)
                        cell.scores.append(macro_f1(y_test, y_pred))
                cell.seconds = time.time() - t0
                _cell_finished("table1", cell)
                results.append(cell)
    return results


def _method_kwargs(method: str, preset: ExperimentPreset) -> dict:
    """Per-method budget overrides derived from the preset."""
    if method in ("dann", "scl"):
        return {"epochs": preset.baseline_epochs}
    if method in ("matchnet", "protonet"):
        return {"episodes": preset.episodes}
    if method == "fine-tune":
        return {
            "epochs": preset.baseline_epochs,
            "fine_tune_epochs": preset.baseline_epochs,
        }
    return {}


def run_ablation(
    dataset: str = "5gc",
    *,
    preset: str | ExperimentPreset | None = None,
    model: str = "TNet",
    strategies: tuple[str, ...] = ("gan", "nocond", "vae", "autoencoder"),
    random_state: int = 0,
    n_jobs: int = 1,
) -> list[CellResult]:
    """Table II: reconstruction-strategy ablation with one classifier."""
    preset = preset if isinstance(preset, ExperimentPreset) else get_preset(preset)
    bench = make_benchmark(dataset, preset, random_state=random_state)
    shared = SharedArtifacts(bench, preset, random_state=random_state, n_jobs=n_jobs)
    shared.prebuild(preset.shots, strategies=strategies)
    label = {"gan": "FS+GAN", "nocond": "FS+NoCond", "vae": "FS+VAE",
             "autoencoder": "FS+VanillaAE"}
    results = []
    tracer = get_tracer()
    for strategy in strategies:
        for shots in preset.shots:
            cell = CellResult(dataset=dataset, method=label[strategy],
                              model=model, shots=shots)
            t0 = time.time()
            with tracer.span("runner.cell", strategy=strategy, shots=shots):
                for repeat in range(preset.repeats):
                    _, _, X_test, y_test = shared.split(shots, repeat)
                    y_pred = shared.fsgan_predict(model, shots, repeat, strategy=strategy)
                    cell.scores.append(macro_f1(y_test, y_pred))
            cell.seconds = time.time() - t0
            _cell_finished("ablation", cell)
            results.append(cell)
    return results
