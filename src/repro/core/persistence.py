"""Deprecated adapter persistence shims over :mod:`repro.core.artifacts`.

``save_adapter`` / ``load_adapter`` predate the versioned artifact store and
are kept as thin wrappers so existing call sites keep working: saving now
writes a schema-v2 :class:`~repro.core.artifacts.AdapterBundle` artifact, and
loading reads both v2 bundles and the original v1 flat layout.

Unlike the historical ``load_adapter`` — which trusted the caller to hand it
a pipeline whose configuration matched the file — loading now validates the
saved adapter against the receiving pipeline (feature counts, index ranges,
downstream-model width) and raises
:class:`~repro.utils.errors.ArtifactError` on any mismatch.

New code should use :func:`repro.core.artifacts.save_artifact` /
:func:`repro.core.artifacts.load_artifact` directly.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import numpy as np

from repro.core.artifacts import AdapterBundle, load_artifact, save_artifact
from repro.core.pipeline import FSGANPipeline
from repro.gan.cgan import ConditionalGAN
from repro.utils.errors import ArtifactError, ValidationError


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def save_adapter(pipeline: FSGANPipeline, path) -> Path:
    """Serialize a fitted pipeline's adapter (scaler + FS + generator).

    .. deprecated::
        Thin wrapper over :func:`repro.core.artifacts.save_artifact` with an
        :class:`AdapterBundle`; only the GAN strategies are supported (the
        deployment path), matching the historical contract.
    """
    _deprecated("save_adapter", "repro.core.artifacts.save_artifact")
    if pipeline.separator_ is None or pipeline.reconstructor_ is None:
        raise ValidationError("save_adapter requires a fitted pipeline")
    model = pipeline.reconstructor_.model_
    if not isinstance(model, ConditionalGAN):
        raise ValidationError(
            "only GAN-based adapters are serializable "
            f"(got {type(model).__name__})"
        )
    return save_artifact(AdapterBundle.from_pipeline(pipeline), Path(path))


def _validate_adapter_compat(bundle: AdapterBundle, pipeline: FSGANPipeline) -> None:
    """Reject adapters whose geometry contradicts the receiving pipeline."""
    separator = bundle.separator_
    n_features = int(separator.n_features_)
    data_min = np.asarray(bundle.scaler_.data_min_)
    if data_min.shape != (n_features,):
        raise ArtifactError(
            f"adapter scaler covers {data_min.shape[0]} features but its "
            f"feature split covers {n_features}"
        )
    variant = np.asarray(separator.variant_indices_)
    invariant = np.asarray(separator.invariant_indices_)
    combined = np.concatenate([variant, invariant])
    if combined.size != n_features or not np.array_equal(
        np.sort(combined), np.arange(n_features)
    ):
        raise ArtifactError(
            "adapter variant/invariant indices do not form a partition of "
            f"range({n_features})"
        )
    model = bundle.reconstructor_.model_
    n_inv = getattr(model, "n_invariant_", None)
    n_var = getattr(model, "n_variant_", None)
    if n_inv is not None and int(n_inv) != invariant.size:
        raise ArtifactError(
            f"adapter generator expects {int(n_inv)} invariant features but "
            f"the saved split has {invariant.size}"
        )
    if n_var is not None and int(n_var) != variant.size:
        raise ArtifactError(
            f"adapter generator produces {int(n_var)} variant features but "
            f"the saved split has {variant.size}"
        )
    downstream = pipeline.model_
    model_width = getattr(downstream, "n_features_", None)
    if model_width is not None and int(model_width) != n_features:
        raise ArtifactError(
            f"adapter was trained on {n_features} features but the "
            f"pipeline's downstream model expects {int(model_width)}"
        )
    old_sep = pipeline.separator_
    if old_sep is not None and int(old_sep.n_features_) != n_features:
        raise ArtifactError(
            f"adapter was trained on {n_features} features but the pipeline "
            f"currently holds a {int(old_sep.n_features_)}-feature split"
        )


def load_adapter(path, pipeline: FSGANPipeline) -> FSGANPipeline:
    """Restore a saved adapter into ``pipeline`` (downstream model untouched).

    .. deprecated::
        Thin wrapper over :func:`repro.core.artifacts.load_artifact`.  The
        saved adapter is validated against the receiving pipeline's geometry
        before anything is swapped in; mismatches raise
        :class:`~repro.utils.errors.ArtifactError`.
    """
    _deprecated("load_adapter", "repro.core.artifacts.load_artifact")
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no adapter file at {path}")
    loaded = load_artifact(path)
    bundle = loaded.estimator
    if not isinstance(bundle, AdapterBundle):
        raise ArtifactError(
            f"{path} holds a {loaded.kind or type(bundle).__name__!r} "
            "artifact, not an adapter bundle"
        )
    _validate_adapter_compat(bundle, pipeline)
    pipeline.scaler_ = bundle.scaler_
    pipeline.separator_ = bundle.separator_
    pipeline.reconstructor_ = bundle.reconstructor_
    pipeline.fs_config = bundle.fs_config
    return pipeline
