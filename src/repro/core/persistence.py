"""Adapter persistence: save/load the FS + GAN artifacts of a pipeline.

In the paper's deployment model the network-management models live wherever
they were deployed and never change; what evolves — and therefore what needs
shipping between systems — is the lightweight *adapter*: the scaler
statistics, the variant/invariant split, and the trained generator.  This
module serializes exactly that to a single ``.npz`` file.

``load_adapter`` restores the adapter into a pipeline whose downstream model
was (re)created by the caller — typically the already-deployed model object.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.config import FSConfig, ReconstructionConfig
from repro.core.feature_separation import FeatureSeparator
from repro.core.pipeline import FSGANPipeline
from repro.core.reconstruction import VariantReconstructor
from repro.gan.cgan import ConditionalGAN
from repro.ml.preprocessing import MinMaxScaler
from repro.utils.errors import ValidationError

_FORMAT_VERSION = 1


def save_adapter(pipeline: FSGANPipeline, path) -> Path:
    """Serialize a fitted pipeline's adapter (scaler + FS + generator).

    Only the GAN strategies are supported (the deployment path); the VAE/AE
    ablation arms are experiment-only.
    """
    if pipeline.separator_ is None or pipeline.reconstructor_ is None:
        raise ValidationError("save_adapter requires a fitted pipeline")
    model = pipeline.reconstructor_.model_
    if not isinstance(model, ConditionalGAN):
        raise ValidationError(
            "only GAN-based adapters are serializable "
            f"(got {type(model).__name__})"
        )
    path = Path(path)
    meta = {
        "format_version": _FORMAT_VERSION,
        "fs_config": {
            "alpha": pipeline.fs_config.alpha,
            "max_parents": pipeline.fs_config.max_parents,
            "max_cond_size": pipeline.fs_config.max_cond_size,
            "min_correlation": pipeline.fs_config.min_correlation,
        },
        "reconstruction": {
            "strategy": pipeline.reconstruction_config.strategy,
            "noise_dim": model.noise_dim,
            "hidden_size": model.hidden_size,
            "conditional": model.conditional,
            "n_classes": model.n_classes_,
            "n_invariant": model.n_invariant_,
            "n_variant": model.n_variant_,
        },
        "n_features": pipeline.separator_.n_features_,
    }
    arrays = {
        "meta_json": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        "scaler_min": pipeline.scaler_.data_min_,
        "scaler_max": pipeline.scaler_.data_max_,
        "variant_indices": pipeline.separator_.variant_indices_,
        "invariant_indices": pipeline.separator_.invariant_indices_,
        "p_values": pipeline.separator_.result_.p_values,
    }
    for key, value in model.generator_.state_dict().items():
        arrays[f"generator.{key}"] = value
    for key, value in model.discriminator_.state_dict().items():
        arrays[f"discriminator.{key}"] = value
    np.savez_compressed(path, **arrays)
    return path


def load_adapter(path, pipeline: FSGANPipeline) -> FSGANPipeline:
    """Restore a saved adapter into ``pipeline`` (downstream model untouched).

    The pipeline must already hold its downstream model (either fitted or
    attached by the caller); this call replaces its scaler, separator and
    reconstructor with the saved artifacts.
    """
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no adapter file at {path}")
    data = np.load(path, allow_pickle=False)
    meta = json.loads(bytes(data["meta_json"].tobytes()).decode())
    if meta["format_version"] != _FORMAT_VERSION:
        raise ValidationError(
            f"unsupported adapter format version {meta['format_version']}"
        )

    scaler = MinMaxScaler()
    scaler.data_min_ = data["scaler_min"]
    scaler.data_max_ = data["scaler_max"]
    span = scaler.data_max_ - scaler.data_min_
    usable = span > 2.0 / np.finfo(np.float64).max
    scaler._scale = np.where(usable, 2.0 / np.where(usable, span, 1.0), 0.0)

    fs_config = FSConfig(**meta["fs_config"])
    separator = FeatureSeparator(fs_config)
    from repro.causal.fnode import FNodeResult

    separator.n_features_ = int(meta["n_features"])
    separator.result_ = FNodeResult(
        variant_indices=data["variant_indices"],
        invariant_indices=data["invariant_indices"],
        p_values=data["p_values"],
    )

    rec_meta = meta["reconstruction"]
    gan = ConditionalGAN(
        noise_dim=int(rec_meta["noise_dim"]),
        hidden_size=int(rec_meta["hidden_size"]),
        conditional=bool(rec_meta["conditional"]),
        epochs=1,
        random_state=0,
    )
    gan.n_invariant_ = int(rec_meta["n_invariant"])
    gan.n_variant_ = int(rec_meta["n_variant"])
    gan.n_classes_ = int(rec_meta["n_classes"]) if rec_meta["n_classes"] else 0
    gan._rng = np.random.default_rng(0)
    rng = np.random.default_rng(0)
    gan.generator_ = gan._build_generator(rng)
    gan.discriminator_ = gan._build_discriminator(rng)
    gan.generator_.load_state_dict(
        {k.removeprefix("generator."): data[k] for k in data.files
         if k.startswith("generator.")}
    )
    gan.discriminator_.load_state_dict(
        {k.removeprefix("discriminator."): data[k] for k in data.files
         if k.startswith("discriminator.")}
    )

    reconstructor = VariantReconstructor(
        ReconstructionConfig(
            strategy=meta["reconstruction"]["strategy"],
            noise_dim=int(rec_meta["noise_dim"]),
            hidden_size=int(rec_meta["hidden_size"]),
        )
    )
    reconstructor.model_ = gan
    reconstructor.n_classes_ = gan.n_classes_ or None

    pipeline.scaler_ = scaler
    pipeline.separator_ = separator
    pipeline.reconstructor_ = reconstructor
    pipeline.fs_config = fs_config
    return pipeline
