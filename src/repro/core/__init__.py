"""The paper's primary contribution: causal feature separation (FS) and
GAN-based variant-feature reconstruction, composed into model-agnostic
domain-adaptation pipelines."""

from repro.core.config import (
    RECONSTRUCTION_STRATEGIES,
    FSConfig,
    ReconstructionConfig,
)
from repro.core.feature_separation import FeatureSeparator
from repro.core.monitor import DriftMonitor, DriftReport
from repro.core.persistence import load_adapter, save_adapter
from repro.core.pipeline import FSGANPipeline, FSModel
from repro.core.reconstruction import VariantReconstructor

__all__ = [
    "DriftMonitor",
    "DriftReport",
    "FSConfig",
    "FSGANPipeline",
    "FSModel",
    "FeatureSeparator",
    "RECONSTRUCTION_STRATEGIES",
    "ReconstructionConfig",
    "VariantReconstructor",
    "load_adapter",
    "save_adapter",
]
