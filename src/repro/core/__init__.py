"""The paper's primary contribution: causal feature separation (FS) and
GAN-based variant-feature reconstruction, composed into model-agnostic
domain-adaptation pipelines.

Attribute access is lazy (PEP 562): leaf modules such as
:mod:`repro.core.estimator` are importable without pulling in the whole
pipeline stack, which lets every model family depend on the Estimator
protocol without import cycles.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "RECONSTRUCTION_STRATEGIES": "repro.core.config",
    "FSConfig": "repro.core.config",
    "ReconstructionConfig": "repro.core.config",
    "Estimator": "repro.core.estimator",
    "register_estimator": "repro.core.estimator",
    "registered_kinds": "repro.core.estimator",
    "get_estimator_class": "repro.core.estimator",
    "FeatureSeparator": "repro.core.feature_separation",
    "DriftMonitor": "repro.core.monitor",
    "DriftReport": "repro.core.monitor",
    "load_adapter": "repro.core.persistence",
    "save_adapter": "repro.core.persistence",
    "FSGANPipeline": "repro.core.pipeline",
    "FSModel": "repro.core.pipeline",
    "VariantReconstructor": "repro.core.reconstruction",
    "ARTIFACT_SCHEMA_VERSION": "repro.core.artifacts",
    "AdapterBundle": "repro.core.artifacts",
    "ArtifactStore": "repro.core.artifacts",
    "LoadedArtifact": "repro.core.artifacts",
    "load_artifact": "repro.core.artifacts",
    "save_artifact": "repro.core.artifacts",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static-analysis aid only
    from repro.core.artifacts import (
        ARTIFACT_SCHEMA_VERSION,
        AdapterBundle,
        ArtifactStore,
        LoadedArtifact,
        load_artifact,
        save_artifact,
    )
    from repro.core.config import (
        RECONSTRUCTION_STRATEGIES,
        FSConfig,
        ReconstructionConfig,
    )
    from repro.core.estimator import (
        Estimator,
        get_estimator_class,
        register_estimator,
        registered_kinds,
    )
    from repro.core.feature_separation import FeatureSeparator
    from repro.core.monitor import DriftMonitor, DriftReport
    from repro.core.persistence import load_adapter, save_adapter
    from repro.core.pipeline import FSGANPipeline, FSModel
    from repro.core.reconstruction import VariantReconstructor


def __getattr__(name):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
