"""End-to-end FS / FS+GAN pipelines (Fig. 1 of the paper).

Two model-agnostic estimators:

- :class:`FSModel` — step 1 only: separate features, train the downstream
  network-management model **on source data restricted to the invariant
  features** ("FS (ours)" in Table I).
- :class:`FSGANPipeline` — the full method: the downstream model is trained
  on source data **with all features**; at inference each target sample's
  variant block is replaced by the GAN reconstruction (Eqs. 10–12), so the
  model never needs retraining when the domain drifts again ("FS+GAN
  (ours)").

Both accept any classifier with ``fit(X, y)`` / ``predict(X)`` via a
``model_factory`` callable, normalize features to [-1, 1] with statistics
fitted on source (the paper's normalization), and use the few-shot target
data *only* inside the FS step.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FSConfig, ReconstructionConfig
from repro.core.estimator import Estimator, register_estimator
from repro.core.feature_separation import FeatureSeparator
from repro.core.reconstruction import VariantReconstructor
from repro.ml.preprocessing import MinMaxScaler
from repro.obs.trace import get_tracer
from repro.utils.errors import ValidationError
from repro.utils.validation import check_array, check_is_fitted, check_X_y


@register_estimator("fs_model")
class FSModel(Estimator):
    """FS-only domain adaptation: train on source invariant features.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh classifier.
    fs_config:
        Feature-separation settings.
    """

    _param_exclude = ("model_factory",)
    _fitted_attr = "model_"
    _state_estimators = ("scaler_", "separator_", "model_")

    def __init__(self, model_factory, *, fs_config: FSConfig | None = None) -> None:
        if not callable(model_factory):
            raise ValidationError("model_factory must be callable")
        self.model_factory = model_factory
        self.fs_config = fs_config or FSConfig()
        self.scaler_: MinMaxScaler | None = None
        self.separator_: FeatureSeparator | None = None
        self.model_ = None

    def fit(self, X_source, y_source, X_target_few, y_target_few=None) -> "FSModel":
        """Separate features, then fit the downstream model on source-invariant data.

        ``y_target_few`` is accepted for API symmetry; FS does not use target
        labels.
        """
        X_source, y_source = check_X_y(X_source, y_source)
        X_target_few = check_array(X_target_few, name="X_target_few")
        self.scaler_ = MinMaxScaler().fit(X_source)
        Xs = self.scaler_.transform(X_source)
        Xt = self.scaler_.transform(X_target_few)
        self.separator_ = FeatureSeparator(self.fs_config).fit(Xs, Xt)
        X_inv, _ = self.separator_.split(Xs)
        if X_inv.shape[1] == 0:
            raise ValidationError(
                "FS flagged every feature as domain-variant; nothing to train on"
            )
        self.model_ = self.model_factory()
        self.model_.fit(X_inv, y_source)
        return self

    def predict(self, X) -> np.ndarray:
        """Predict target samples using only their invariant features."""
        check_is_fitted(self, "model_")
        X_inv, _ = self.separator_.split(self.scaler_.transform(X))
        return self.model_.predict(X_inv)

    @property
    def n_variant_(self) -> int:
        check_is_fitted(self, "separator_")
        return self.separator_.n_variant_


@register_estimator("fsgan_pipeline")
class FSGANPipeline(Estimator):
    """The full FS+GAN method (Fig. 1): separation, reconstruction, inference.

    Training (source only, besides the FS step):

    1. fit the [-1, 1] scaler on source;
    2. FS between scaled source and scaled few-shot target (step a);
    3. train the downstream model on scaled source with **all** features;
    4. train the reconstruction model (GAN by default) on the source
       invariant/variant blocks, conditioned on the source labels (step b).

    Inference on a target sample (step c): reconstruct the variant block
    from the invariant block, merge in the original column order, and feed
    the source-like sample to the frozen downstream model.
    """

    _param_exclude = ("model_factory", "hooks")
    _fitted_attr = "model_"
    _state_arrays = ("drift_reference_",)
    _state_estimators = ("scaler_", "separator_", "reconstructor_", "model_")

    #: rows retained in the persisted drift reference (strided subsample of
    #: the scaled source, enough for the tracker's per-feature bins)
    _DRIFT_REFERENCE_ROWS = 2048

    def __init__(
        self,
        model_factory,
        *,
        fs_config: FSConfig | None = None,
        reconstruction_config: ReconstructionConfig | None = None,
        random_state=None,
        hooks=None,
    ) -> None:
        if not callable(model_factory):
            raise ValidationError("model_factory must be callable")
        self.model_factory = model_factory
        self.fs_config = fs_config or FSConfig()
        self.reconstruction_config = reconstruction_config or ReconstructionConfig()
        self.random_state = random_state
        self.hooks = hooks
        self.scaler_: MinMaxScaler | None = None
        self.separator_: FeatureSeparator | None = None
        self.reconstructor_: VariantReconstructor | None = None
        self.model_ = None
        self.drift_reference_: np.ndarray | None = None

    def fit(
        self, X_source, y_source, X_target_few, y_target_few=None
    ) -> "FSGANPipeline":
        """Fit the whole pipeline; target labels are never used."""
        X_source, y_source = check_X_y(X_source, y_source)
        X_target_few = check_array(X_target_few, name="X_target_few")
        if X_target_few.shape[1] != X_source.shape[1]:
            raise ValidationError("source and target feature counts differ")
        tracer = get_tracer()
        with tracer.span(
            "pipeline.fit",
            n_source=X_source.shape[0],
            n_target_few=X_target_few.shape[0],
            n_features=X_source.shape[1],
        ):
            with tracer.span("pipeline.scale"):
                self.scaler_ = MinMaxScaler().fit(X_source)
                Xs = self.scaler_.transform(X_source)
                Xt = self.scaler_.transform(X_target_few)
            self._cached_source = (Xs, y_source)
            # a bounded, deterministic (strided — no RNG draw) subsample of
            # the scaled source, persisted with the artifact so serve-side
            # drift tracking works without the full training cache
            stride = max(1, -(-Xs.shape[0] // self._DRIFT_REFERENCE_ROWS))
            self.drift_reference_ = Xs[::stride].copy()

            with tracer.span("pipeline.fs") as span:
                self.separator_ = FeatureSeparator(self.fs_config).fit(Xs, Xt)
                span.tag(n_variant=self.separator_.n_variant_)
            X_inv, X_var = self.separator_.split(Xs)

            with tracer.span("pipeline.model_fit"):
                self.model_ = self.model_factory()
                self.model_.fit(Xs, y_source)  # all features, source only

            self.reconstructor_ = VariantReconstructor(
                self.reconstruction_config, random_state=self.random_state
            )
            self.reconstructor_.fit(X_inv, X_var, y_source, hooks=self.hooks)
        return self

    def refit_adapter(self, X_target_few) -> "FSGANPipeline":
        """Re-run FS + reconstruction for a *new* target domain.

        The downstream model is left untouched — this is the paper's
        "no retraining or fine-tuning required" property (§VI-F): only the
        lightweight adapter (FS + GAN) is refreshed when the domain evolves.
        Requires the training cache; unavailable after
        :meth:`release_training_cache`.

        FS re-runs **warm** when the incumbent separator carries a
        :class:`~repro.causal.warm.WarmState` (persistent CI-statistics
        cache + decision priors, also restored from v2 artifacts): under
        ``fs_config.warm_mode`` the re-discovery reuses the source-side
        regression state and confirmation-tests the previous decisions
        instead of paying full cold cost, falling back to cold on any guard
        mismatch.  Set ``warm_mode="off"`` to force cold refits.
        """
        warm = getattr(getattr(self, "separator_", None), "warm_state_", None)
        with get_tracer().span("pipeline.refit_adapter", warm=warm is not None):
            self.rediscover_fs(X_target_few)
            self.refit_reconstruction()
        return self

    def _require_fit_cache(self) -> tuple:
        check_is_fitted(self, "model_")
        if self._fit_cache is None:
            if getattr(self, "_cache_released", False):
                raise ValidationError(
                    "refit_adapter is unavailable: the training cache was "
                    "dropped by release_training_cache(); re-fit the pipeline "
                    "to refresh the adapter again"
                )
            raise ValidationError("refit_adapter requires the pipeline to be fitted")
        return self._fit_cache

    def rediscover_fs(self, X_target_few) -> "FeatureSeparator":
        """Stage 1 of :meth:`refit_adapter`: warm FS re-discovery only.

        Replaces ``separator_`` (warm-started from the incumbent's
        ``warm_state_`` when present) and returns it, leaving the
        reconstruction model untouched — callers that need the
        re-discovery/refit boundary (the adaptation controller's
        REDISCOVERING → REFITTING transition) drive the two stages
        separately; :meth:`refit_adapter` runs both.
        """
        Xs, _ = self._require_fit_cache()
        Xt = self.scaler_.transform(check_array(X_target_few, name="X_target_few"))
        warm = getattr(getattr(self, "separator_", None), "warm_state_", None)
        self.separator_ = FeatureSeparator(self.fs_config).fit(Xs, Xt, warm=warm)
        return self.separator_

    def refit_reconstruction(self) -> "VariantReconstructor":
        """Stage 2 of :meth:`refit_adapter`: retrain the reconstruction model
        for the current ``separator_`` (the downstream model stays frozen)."""
        Xs, y_source = self._require_fit_cache()
        X_inv, X_var = self.separator_.split(Xs)
        self.reconstructor_ = VariantReconstructor(
            self.reconstruction_config, random_state=self.random_state
        )
        self.reconstructor_.fit(X_inv, X_var, y_source, hooks=self.hooks)
        return self.reconstructor_

    def release_training_cache(self) -> "FSGANPipeline":
        """Drop the retained scaled source matrix to shrink the live footprint.

        The cache (the full scaled source data plus labels) exists solely so
        :meth:`refit_adapter` and :class:`~repro.core.monitor.DriftMonitor`
        can re-run FS without the caller resupplying source data.  Long-lived
        serving processes that only ever call :meth:`predict` should release
        it after fitting; afterwards ``refit_adapter`` raises a clear error
        instead of silently retraining on nothing.
        """
        self._cached_source = None
        self._cache_released = True
        return self

    @property
    def _fit_cache(self):
        return getattr(self, "_cached_source", None)

    def transform(self, X, *, n_draws: int = 1) -> np.ndarray:
        """Map target samples to source-like samples (scaled space, Eq. 11)."""
        check_is_fitted(self, "model_")
        with get_tracer().span("pipeline.transform", n_samples=len(X)):
            Xs = self.scaler_.transform(check_array(X))
            X_inv, _ = self.separator_.split(Xs)
            X_var_hat = self.reconstructor_.reconstruct(X_inv, n_draws=n_draws)
            return self.separator_.merge(X_inv, X_var_hat)

    def predict(self, X, *, n_draws: int = 1) -> np.ndarray:
        """Predict labels for target samples via the reconstruction path (Eq. 12)."""
        with get_tracer().span("pipeline.predict", n_samples=len(X)):
            return self.model_.predict(self.transform(X, n_draws=n_draws))

    def predict_proba(self, X, *, n_draws: int = 1) -> np.ndarray:
        """Class probabilities, when the downstream model provides them."""
        check_is_fitted(self, "model_")
        if not hasattr(self.model_, "predict_proba"):
            raise ValidationError("the downstream model has no predict_proba")
        with get_tracer().span("pipeline.predict_proba", n_samples=len(X)):
            return self.model_.predict_proba(self.transform(X, n_draws=n_draws))

    def predict_source(self, X) -> np.ndarray:
        """Predict source-domain samples directly (no reconstruction)."""
        check_is_fitted(self, "model_")
        return self.model_.predict(self.scaler_.transform(check_array(X)))

    @property
    def n_variant_(self) -> int:
        check_is_fitted(self, "separator_")
        return self.separator_.n_variant_

    def _post_load(self, meta: dict) -> None:
        # a restored pipeline is a serving object: the scaled-source refit
        # cache never crosses the disk boundary, so refit_adapter raises the
        # same clear error as after release_training_cache()
        self._cached_source = None
        self._cache_released = True

    def export_plan(self) -> dict:
        """JSON description of the staged serve path (for the manifest)."""
        check_is_fitted(self, "model_")
        return {
            "kind": self._estimator_kind,
            "stages": [
                {
                    "stage": "scale",
                    "op": "minmax",
                    "n_features": int(self.separator_.n_features_),
                },
                {
                    "stage": "split",
                    "n_invariant": int(len(self.separator_.invariant_indices_)),
                    "n_variant": int(self.separator_.n_variant_),
                },
                {
                    "stage": "reconstruct",
                    "strategy": self.reconstruction_config.strategy,
                    "model": type(self.reconstructor_.model_).__name__,
                },
                {"stage": "merge"},
                {"stage": "predict", "model": type(self.model_).__name__},
            ],
        }

    def compile(self, *, n_draws: int = 1, track_drift: bool = False,
                drift_options: dict | None = None):
        """Compile the serve path into an allocation-free batch scorer.

        Returns a :class:`repro.serve.plan.InferencePlan` whose float64
        ``predict_proba`` is bit-identical to :meth:`predict_proba` (the plan
        replays the exact same ufunc sequence into preallocated buffers and
        clones the reconstruction RNG state at compile time).

        With ``track_drift=True`` the plan also carries a
        :class:`repro.obs.drift.FeatureDriftTracker` referenced on the
        pipeline's scaled training source — the live training cache when
        present, else the bounded ``drift_reference_`` subsample persisted
        with the artifact — publishing streaming PSI/KS gauges and
        ``drift.alarm`` events for every served batch; ``drift_options``
        forwards tracker kwargs (``psi_threshold``, ``min_rows``,
        ``window_rows``, …).
        """
        from repro.serve.plan import InferencePlan  # lazy: serve imports core

        plan = InferencePlan(self, n_draws=n_draws)
        if track_drift:
            if self._fit_cache is not None:
                reference, _ = self._fit_cache
            elif self.drift_reference_ is not None:
                # restored artifact / released cache: the persisted
                # strided subsample of the scaled source
                reference = self.drift_reference_
            else:
                raise ValidationError(
                    "compile(track_drift=True) needs the pipeline's training "
                    "cache or persisted drift reference; neither survived "
                    "(legacy artifact saved before drift_reference_ existed?)"
                )
            from repro.obs.drift import FeatureDriftTracker

            plan.attach_drift_tracker(
                FeatureDriftTracker(reference, **(drift_options or {}))
            )
        return plan
