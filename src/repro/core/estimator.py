"""Unified Estimator protocol: the train/serve contract for every model.

The paper's deployment story is a train/serve split — fit everything on
source data once, then keep serving the frozen downstream model behind the
FS+GAN adapter as the network drifts.  Serving needs a uniform notion of
*what a fitted model is* so artifacts can round-trip from disk without any
live training configuration.  This module provides that contract:

``get_params()``
    JSON-serializable constructor arguments — enough to rebuild an
    *unfitted* twin via :meth:`Estimator.from_params`.
``state_dict()`` / ``load_state_dict()``
    A flat ``{name: ndarray}`` mapping of the fitted state (plus one
    ``__meta__`` JSON blob for scalars), safe to store with
    ``allow_pickle=False``.  Loading writes network parameters **in place**
    so consolidated (fused-trainer) flat views stay valid.
``export_plan()``
    A JSON description of the serve path (used by the artifact manifest and
    the compiled :class:`~repro.serve.plan.InferencePlan`).

Most classes opt in declaratively by listing attribute names in
``_state_arrays`` / ``_state_scalars`` / ``_state_networks`` /
``_state_estimators`` and registering a stable ``kind`` string with
:func:`register_estimator`.  Hooks (``_prepare_load`` / ``_post_load``)
cover the irregular parts: rebuilding network topology before weights are
loaded, recomputing derived caches after.
"""

from __future__ import annotations

import dataclasses
import importlib
import inspect
import json

import numpy as np

from repro.core.config import FSConfig, ReconstructionConfig
from repro.utils.errors import ArtifactError
from repro.utils.validation import check_is_fitted

__all__ = [
    "Estimator",
    "decode_json",
    "encode_json",
    "get_estimator_class",
    "pack_estimator",
    "register_estimator",
    "registered_kinds",
    "unpack_estimator",
]

#: Reserved key holding the JSON ``{kind, params}`` header of a packed
#: estimator inside a flat array mapping.
ESTIMATOR_HEADER = "__estimator__"

#: Reserved key holding the JSON scalar metadata of a ``state_dict``.
META_KEY = "__meta__"


# ---------------------------------------------------------------------------
# JSON <-> uint8 helpers (npz stores arrays only; JSON rides as raw bytes)
# ---------------------------------------------------------------------------


def encode_json(obj) -> np.ndarray:
    """Encode a JSON-serializable object as a uint8 byte array."""
    return np.frombuffer(json.dumps(obj, sort_keys=True).encode("utf-8"), dtype=np.uint8)


def decode_json(arr: np.ndarray):
    """Decode an object encoded by :func:`encode_json`."""
    return json.loads(bytes(np.asarray(arr, dtype=np.uint8).tobytes()).decode("utf-8"))


def _to_jsonable(value):
    """Recursively convert numpy scalars/arrays inside ``value`` to JSON types."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    return value


#: Config dataclasses allowed inside ``get_params`` output, by class name.
_PARAM_DATACLASSES = {
    "FSConfig": FSConfig,
    "ReconstructionConfig": ReconstructionConfig,
}


def param_to_jsonable(value):
    """Sanitize one constructor argument for the JSON params header."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in _PARAM_DATACLASSES:
            raise ArtifactError(
                f"config dataclass {name!r} is not artifact-serializable"
            )
        return {
            "__dataclass__": name,
            "fields": _to_jsonable(dataclasses.asdict(value)),
        }
    if isinstance(value, np.random.Generator):
        # A live Generator cannot be represented as a constructor argument;
        # fitted state (including RNG state where it matters for serving)
        # travels in the state dict instead.
        return None
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [param_to_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ArtifactError(
        f"constructor argument of type {type(value).__name__} is not "
        f"JSON-serializable; override get_params()"
    )


def param_from_jsonable(value):
    """Inverse of :func:`param_to_jsonable` (rebuilds config dataclasses)."""
    if isinstance(value, dict) and "__dataclass__" in value:
        name = value["__dataclass__"]
        if name not in _PARAM_DATACLASSES:
            raise ArtifactError(f"unknown config dataclass {name!r} in artifact params")
        return _PARAM_DATACLASSES[name](**value["fields"])
    if isinstance(value, list):
        return [param_from_jsonable(v) for v in value]
    return value


# ---------------------------------------------------------------------------
# Kind registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, type] = {}

#: Modules defining registered estimators, imported on first registry lookup.
#: Lazy so that ``repro.core.estimator`` itself stays import-cycle free.
_LAZY_MODULES = (
    "repro.ml.preprocessing",
    "repro.ml.tree",
    "repro.ml.random_forest",
    "repro.ml.gradient_boosting",
    "repro.ml.mlp",
    "repro.ml.gmm",
    "repro.ml.ica",
    "repro.gan.cgan",
    "repro.gan.vae",
    "repro.gan.autoencoder",
    "repro.core.feature_separation",
    "repro.core.reconstruction",
    "repro.core.pipeline",
    "repro.core.artifacts",
    "repro.baselines.naive",
    "repro.baselines.coral",
    "repro.baselines.icd",
    "repro.baselines.cmt",
    "repro.baselines.dann",
    "repro.baselines.scl",
    "repro.baselines.fewshot",
    "repro.baselines.ours",
)
_lazy_loaded = False


def _ensure_registered() -> None:
    global _lazy_loaded
    if _lazy_loaded:
        return
    _lazy_loaded = True
    for module in _LAZY_MODULES:
        importlib.import_module(module)


def register_estimator(kind: str):
    """Class decorator registering ``cls`` under the stable ``kind`` string.

    The kind string is what artifacts store; it must never change once a
    schema version has shipped bundles containing it.
    """

    def decorate(cls):
        existing = _REGISTRY.get(kind)
        if existing is not None and existing is not cls:
            raise ArtifactError(
                f"estimator kind {kind!r} already registered by {existing.__name__}"
            )
        cls._estimator_kind = kind
        _REGISTRY[kind] = cls
        return cls

    return decorate


def get_estimator_class(kind: str) -> type:
    """Resolve a kind string to its registered class."""
    _ensure_registered()
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise ArtifactError(
            f"unknown estimator kind {kind!r}; known kinds: {registered_kinds()}"
        ) from None


def registered_kinds() -> list[str]:
    """All registered kind strings, sorted."""
    _ensure_registered()
    return sorted(_REGISTRY)


def _restored_model_factory():
    """Placeholder factory injected when loading factory-based estimators.

    A restored estimator carries its *fitted* model; the factory is only
    consulted by ``fit``, which a serve-side artifact is not meant to call.
    """
    raise ArtifactError(
        "this estimator was restored from an artifact; its model_factory is a "
        "placeholder and cannot build new models — construct a fresh estimator "
        "to refit"
    )


# ---------------------------------------------------------------------------
# Network (de)serialization helpers
# ---------------------------------------------------------------------------


def network_state(net) -> dict[str, np.ndarray]:
    """Flat parameter mapping of a ``Sequential`` or a bare parametric layer."""
    if hasattr(net, "state_dict"):
        return net.state_dict()
    return {key: value.copy() for key, value in net.params.items()}


def load_network_state(net, state: dict[str, np.ndarray]) -> None:
    """Write ``state`` into ``net`` **in place** (preserves fused flat views)."""
    if hasattr(net, "load_state_dict"):
        net.load_state_dict(state)
        return
    for key, value in net.params.items():
        if key not in state:
            raise ArtifactError(f"network state is missing parameter {key!r}")
        if state[key].shape != value.shape:
            raise ArtifactError(
                f"shape mismatch for network parameter {key!r}: "
                f"{state[key].shape} vs {value.shape}"
            )
        value[...] = state[key]


# ---------------------------------------------------------------------------
# The protocol
# ---------------------------------------------------------------------------


class Estimator:
    """Mixin implementing the train/serve contract declaratively.

    Subclasses register a kind with :func:`register_estimator` and declare
    which attributes make up their fitted state:

    ``_state_scalars``
        JSON-serializable attributes (ints, floats, strings, lists, dicts);
        stored in the ``__meta__`` blob.
    ``_state_arrays``
        ndarray attributes, copied verbatim (``None`` values are skipped and
        restored as ``None``).
    ``_state_networks``
        ``Sequential`` networks or bare parametric layers; flattened under a
        ``{name}.`` prefix.  ``_prepare_load`` must reconstruct the topology
        before weights are written in place.
    ``_state_estimators``
        Nested :class:`Estimator` attributes, packed recursively under a
        ``{name}.`` prefix with their own ``{kind, params}`` header.
    """

    #: Stable registry kind; set by :func:`register_estimator`.
    _estimator_kind: str | None = None
    #: Constructor arguments omitted from ``get_params`` (e.g. callables).
    _param_exclude: tuple = ()
    #: Attribute whose non-None value marks the estimator as fitted.
    _fitted_attr: str | None = None
    _state_scalars: tuple = ()
    _state_arrays: tuple = ()
    _state_networks: tuple = ()
    _state_estimators: tuple = ()

    # -- params ------------------------------------------------------------

    def get_params(self) -> dict:
        """JSON-serializable constructor arguments of this estimator.

        The default implementation introspects ``__init__`` and reads the
        attribute of the same name; override when an argument is not stored
        verbatim.
        """
        params: dict = {}
        signature = inspect.signature(type(self).__init__)
        for name, parameter in signature.parameters.items():
            if name == "self" or parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            if name in self._param_exclude:
                continue
            if not hasattr(self, name):
                raise ArtifactError(
                    f"{type(self).__name__} does not store constructor argument "
                    f"{name!r}; override get_params()"
                )
            params[name] = param_to_jsonable(getattr(self, name))
        return params

    @classmethod
    def from_params(cls, params: dict) -> "Estimator":
        """Build an unfitted instance from :meth:`get_params` output."""
        kwargs = {name: param_from_jsonable(value) for name, value in params.items()}
        signature = inspect.signature(cls.__init__)
        if "model_factory" in signature.parameters and "model_factory" not in kwargs:
            kwargs["model_factory"] = _restored_model_factory
        return cls(**kwargs)

    # -- hooks -------------------------------------------------------------

    def _extra_meta(self) -> dict:
        """Extra JSON metadata merged into ``__meta__`` (e.g. RNG state)."""
        return {}

    def _prepare_load(self, meta: dict, state: dict) -> None:
        """Rebuild network topology (etc.) before weights are loaded."""

    def _post_load(self, meta: dict) -> None:
        """Recompute derived caches after all state has been restored."""

    # -- state -------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat ``{name: ndarray}`` mapping of the fitted state."""
        if self._fitted_attr is not None:
            check_is_fitted(self, self._fitted_attr)
        meta = {name: _to_jsonable(getattr(self, name)) for name in self._state_scalars}
        meta.update(_to_jsonable(self._extra_meta()))
        state: dict[str, np.ndarray] = {META_KEY: encode_json(meta)}
        for name in self._state_arrays:
            value = getattr(self, name)
            if value is None:
                continue
            array = np.asarray(value)
            if array.dtype == object:
                raise ArtifactError(
                    f"{type(self).__name__}.{name} has object dtype and cannot "
                    f"be stored without pickle"
                )
            state[name] = array.copy()
        for name in self._state_networks:
            net = getattr(self, name, None)
            if net is None:
                continue
            for key, value in network_state(net).items():
                state[f"{name}.{key}"] = value
        for name in self._state_estimators:
            nested = getattr(self, name, None)
            if nested is None:
                continue
            state.update(pack_estimator(nested, prefix=f"{name}."))
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> "Estimator":
        """Restore the fitted state saved by :meth:`state_dict`."""
        meta = decode_json(state[META_KEY]) if META_KEY in state else {}
        for name in self._state_scalars:
            if name in meta:
                setattr(self, name, meta[name])
        for name in self._state_arrays:
            setattr(self, name, np.array(state[name]) if name in state else None)
        self._prepare_load(meta, state)
        for name in self._state_networks:
            prefix = f"{name}."
            sub = {
                key[len(prefix):]: value
                for key, value in state.items()
                if key.startswith(prefix)
            }
            if not sub:
                continue
            net = getattr(self, name, None)
            if net is None:
                raise ArtifactError(
                    f"{type(self).__name__}._prepare_load() did not construct "
                    f"network {name!r}"
                )
            load_network_state(net, sub)
        for name in self._state_estimators:
            if f"{name}.{ESTIMATOR_HEADER}" in state:
                setattr(self, name, unpack_estimator(state, prefix=f"{name}."))
            else:
                setattr(self, name, None)
        self._post_load(meta)
        return self

    # -- serving -----------------------------------------------------------

    def export_plan(self) -> dict:
        """JSON description of how this estimator is served.

        The default is a one-stage plan naming the estimator; composite
        estimators (the FS+GAN pipeline) override this with their staged
        serve path.
        """
        return {"kind": self._estimator_kind, "params": self.get_params()}


# ---------------------------------------------------------------------------
# Packing (estimator <-> flat array mapping with {kind, params} header)
# ---------------------------------------------------------------------------


def pack_estimator(estimator: Estimator, prefix: str = "") -> dict[str, np.ndarray]:
    """Pack an estimator (header + state) into a flat array mapping."""
    if not isinstance(estimator, Estimator) or estimator._estimator_kind is None:
        raise ArtifactError(
            f"{type(estimator).__name__} does not implement the Estimator "
            f"protocol and cannot be serialized"
        )
    header = {"kind": estimator._estimator_kind, "params": estimator.get_params()}
    arrays = {f"{prefix}{ESTIMATOR_HEADER}": encode_json(header)}
    for key, value in estimator.state_dict().items():
        arrays[f"{prefix}{key}"] = value
    return arrays


def unpack_estimator(state: dict[str, np.ndarray], prefix: str = "") -> Estimator:
    """Rebuild the estimator packed under ``prefix`` by :func:`pack_estimator`."""
    header_key = f"{prefix}{ESTIMATOR_HEADER}"
    if header_key not in state:
        raise ArtifactError(f"no estimator header found at {header_key!r}")
    header = decode_json(state[header_key])
    cls = get_estimator_class(header["kind"])
    estimator = cls.from_params(header.get("params", {}))
    sub = {
        key[len(prefix):]: value
        for key, value in state.items()
        if key.startswith(prefix) and key != header_key
    }
    estimator.load_state_dict(sub)
    return estimator
