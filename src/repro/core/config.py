"""Configuration dataclasses for the FS / FS+GAN pipeline.

Defaults follow §V-C3 of the paper scaled to CPU budgets; the ``paper()``
constructors return the exact published settings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.errors import ConfigurationError

RECONSTRUCTION_STRATEGIES = ("gan", "nocond", "vae", "autoencoder")


@dataclass(frozen=True)
class FSConfig:
    """Feature-separation settings (§V-A).

    ``alpha`` is the CI-test significance level; ``max_parents`` the size of
    the approximate parent set conditioning each ``X ⊥ F | Pa(X)`` test;
    ``min_correlation`` the parent-candidate admission threshold.

    ``n_jobs`` is the worker-process count for the CI subset search.  The
    only accepted values are positive integers and ``-1``, which means "one
    worker per available CPU core" (``os.cpu_count()``); ``0`` and other
    negative values are rejected at construction.  Parallel results are
    bit-identical to the serial path, and workers receive the matrices
    zero-copy via shared memory when ``use_shared_memory`` is set (with an
    automatic result-identical pickling fallback).

    Wide-scale controls (ROADMAP item 4): ``prune_k`` caps each feature's
    primary conditioning-candidate pool at the top-k candidates by
    marginal-association effect size (``prune_exact=True`` keeps variant
    decisions exactly equal to the unpruned search via a fallback phase);
    ``budget`` / ``budget_seconds`` bound the conditional-test count /
    wall-clock of an anytime search that reports its coverage;
    ``stats_dtype="float32"`` runs the statistics path in single precision
    with float64 re-verification of borderline p-values (variant decisions
    match float64).

    ``warm_mode`` controls how a refit uses the previous run's
    :class:`~repro.causal.warm.WarmState` (persistent CI-statistics cache +
    decision priors): ``"exact"`` (default) reuses state under provable
    variant-set-identity guards, ``"confirm"`` additionally short-circuits
    stable decisions after one confirmation test (empirically validated,
    fastest), ``"off"`` always runs cold.  Cold fits are unaffected; the
    mode only applies when a warm state is available (e.g.
    ``FSGANPipeline.refit_adapter``).
    """

    alpha: float = 0.01
    max_parents: int = 5
    max_cond_size: int = 2
    min_correlation: float = 0.2
    n_jobs: int = 1
    prune_k: int | None = None
    prune_exact: bool = True
    budget: int | None = None
    budget_seconds: float | None = None
    stats_dtype: str = "float64"
    use_shared_memory: bool = True
    warm_mode: str = "exact"

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigurationError("alpha must be in (0, 1)")
        if self.max_parents < 0:
            raise ConfigurationError("max_parents must be >= 0")
        if self.max_cond_size < 0:
            raise ConfigurationError("max_cond_size must be >= 0")
        if not 0.0 <= self.min_correlation <= 1.0:
            raise ConfigurationError("min_correlation must be in [0, 1]")
        if self.n_jobs != -1 and self.n_jobs < 1:
            raise ConfigurationError(
                "n_jobs must be >= 1 or -1 (all cores); 0 and negative "
                f"values other than -1 are invalid, got {self.n_jobs!r}"
            )
        if self.prune_k is not None and self.prune_k < 1:
            raise ConfigurationError("prune_k must be a positive int or None")
        if self.budget is not None and self.budget < 0:
            raise ConfigurationError("budget must be >= 0 or None")
        if self.budget_seconds is not None and self.budget_seconds <= 0:
            raise ConfigurationError("budget_seconds must be > 0 or None")
        if self.stats_dtype not in ("float64", "float32"):
            raise ConfigurationError(
                f"stats_dtype must be 'float64' or 'float32', got {self.stats_dtype!r}"
            )
        if self.warm_mode not in ("off", "exact", "confirm"):
            raise ConfigurationError(
                f"warm_mode must be 'off', 'exact' or 'confirm', "
                f"got {self.warm_mode!r}"
            )


@dataclass(frozen=True)
class ReconstructionConfig:
    """Reconstruction settings (§V-C).

    ``strategy`` selects the Table II variant: ``"gan"`` (FS+GAN),
    ``"nocond"`` (FS+NoCond — discriminator not conditioned on the label),
    ``"vae"`` (FS+VAE) or ``"autoencoder"`` (FS+VanillaAE).  ``dtype``
    selects the compute dtype of the reconstruction network: ``"float64"``
    (default, exact) or ``"float32"`` (fast path, tolerance-bounded).
    """

    strategy: str = "gan"
    noise_dim: int = 16
    hidden_size: int = 128
    epochs: int = 150
    batch_size: int = 64
    lr: float = 2e-4
    weight_decay: float = 1e-6
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.strategy not in RECONSTRUCTION_STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {RECONSTRUCTION_STRATEGIES}, "
                f"got {self.strategy!r}"
            )
        if self.noise_dim < 1 or self.hidden_size < 1:
            raise ConfigurationError("noise_dim and hidden_size must be >= 1")
        if self.epochs < 1 or self.batch_size < 1:
            raise ConfigurationError("epochs and batch_size must be >= 1")
        if self.dtype not in ("float64", "float32"):
            raise ConfigurationError(
                f"dtype must be 'float64' or 'float32', got {self.dtype!r}"
            )

    @classmethod
    def paper_5gc(cls) -> "ReconstructionConfig":
        """Published 5GC settings: noise 30, hidden 256, 500 epochs."""
        return cls(noise_dim=30, hidden_size=256, epochs=500)

    @classmethod
    def paper_5gipc(cls) -> "ReconstructionConfig":
        """Published 5GIPC settings: noise 15, hidden 128, 500 epochs."""
        return cls(noise_dim=15, hidden_size=128, epochs=500)
