"""FS — causal-inference-based feature separation (§V-A, step 1).

Wraps :class:`repro.causal.FNodeDiscovery` with the estimator surface the
pipeline needs: fit on (source, few-shot target) matrices, then split /
merge feature matrices into domain-variant and domain-invariant blocks while
preserving the original column order (the downstream model is trained with
the original feature order, Eq. 12's requirement).
"""

from __future__ import annotations

import numpy as np

from repro.causal.fnode import FNodeDiscovery, FNodeResult
from repro.causal.warm import WarmState
from repro.core.config import FSConfig
from repro.core.estimator import Estimator, decode_json, encode_json, register_estimator
from repro.obs.export import get_event_log
from repro.obs.trace import get_tracer
from repro.utils.errors import ValidationError
from repro.utils.validation import check_array, check_is_fitted, mark_validated


@register_estimator("feature_separator")
class FeatureSeparator(Estimator):
    """Separates features into domain-variant and domain-invariant sets.

    Parameters
    ----------
    config:
        :class:`FSConfig`; defaults to the library defaults.

    Examples
    --------
    >>> sep = FeatureSeparator()
    >>> sep.fit(X_source, X_target_few)            # doctest: +SKIP
    >>> X_inv, X_var = sep.split(X_source)         # doctest: +SKIP
    """

    _fitted_attr = "result_"

    def __init__(self, config: FSConfig | None = None) -> None:
        self.config = config or FSConfig()
        self.result_: FNodeResult | None = None
        self.n_features_: int | None = None
        self.warm_state_: WarmState | None = None
        #: CI-engine cache counters of the producing discovery run (or
        #: None for a separator restored from artifact state)
        self.cache_stats_: dict | None = None

    def state_dict(self) -> dict[str, np.ndarray]:
        check_is_fitted(self, "result_")
        meta = {
            "n_features_": int(self.n_features_),
            "parent_sets": [list(p) for p in self.result_.parent_sets],
            "n_tests": int(self.result_.n_tests),
            "coverage": float(self.result_.coverage),
            "has_marginal": self.result_.marginal_p_values is not None,
            "has_warm": self.warm_state_ is not None,
        }
        state = {
            "__meta__": encode_json(meta),
            "variant_indices": np.asarray(self.result_.variant_indices).copy(),
            "invariant_indices": np.asarray(self.result_.invariant_indices).copy(),
            "p_values": np.asarray(self.result_.p_values).copy(),
        }
        if self.result_.marginal_p_values is not None:
            state["marginal_p_values"] = np.asarray(
                self.result_.marginal_p_values
            ).copy()
        if self.warm_state_ is not None:
            # nested flat layout: the warm state (priors + CI-statistics
            # cache) rides inside the same v2 artifact bundle, so a
            # daemon-triggered refit can warm-start from disk
            for name, arr in self.warm_state_.state_dict().items():
                state[f"warm.{name}"] = arr
        return state

    def load_state_dict(self, state) -> "FeatureSeparator":
        meta = decode_json(state["__meta__"])
        self.n_features_ = int(meta["n_features_"])
        self.result_ = FNodeResult(
            variant_indices=np.array(state["variant_indices"]),
            invariant_indices=np.array(state["invariant_indices"]),
            p_values=np.array(state["p_values"]),
            parent_sets=[tuple(p) for p in meta.get("parent_sets", [])],
            n_tests=int(meta.get("n_tests", 0)),
            coverage=float(meta.get("coverage", 1.0)),
            marginal_p_values=(
                np.array(state["marginal_p_values"])
                if meta.get("has_marginal")
                else None
            ),
        )
        self.warm_state_ = None
        if meta.get("has_warm"):
            prefix = "warm."
            warm_state = {
                name[len(prefix):]: arr
                for name, arr in state.items()
                if name.startswith(prefix)
            }
            self.warm_state_ = WarmState.from_state(warm_state)
        return self

    @classmethod
    def from_result(
        cls,
        result: FNodeResult,
        n_features: int,
        config: FSConfig | None = None,
    ) -> "FeatureSeparator":
        """Wrap a precomputed :class:`FNodeResult` as a fitted separator.

        Used by the parallel experiment runner, where discovery runs in a
        worker process and only the (picklable) result crosses back.  No
        per-feature ``fs.feature_decision`` events are emitted on this path.
        """
        sep = cls(config)
        sep.result_ = result
        sep.n_features_ = int(n_features)
        return sep

    def fit(self, X_source, X_target, *, warm: WarmState | None = None) -> "FeatureSeparator":
        """Run intervention-target discovery between the two domains.

        ``X_target`` is the (few-shot) target training data; it is used only
        here — never to train the downstream model or the GAN.

        ``warm`` optionally supplies a previous run's
        :class:`~repro.causal.warm.WarmState` (typically another separator's
        :attr:`warm_state_`): discovery then re-runs warm under
        ``config.warm_mode`` instead of cold, falling back to cold on any
        guard mismatch.  Either way, the freshly accumulated warm state is
        captured on :attr:`warm_state_` for the *next* refit and persisted
        with the estimator state.
        """
        # validate here, mark, and the discovery's own check_array is free
        X_source = mark_validated(
            check_array(X_source, name="X_source", min_samples=4)
        )
        X_target = mark_validated(
            check_array(X_target, name="X_target", min_samples=2)
        )
        discovery = FNodeDiscovery(
            alpha=self.config.alpha,
            max_parents=self.config.max_parents,
            max_cond_size=self.config.max_cond_size,
            min_correlation=self.config.min_correlation,
            n_jobs=self.config.n_jobs,
            prune_k=self.config.prune_k,
            prune_exact=self.config.prune_exact,
            budget=self.config.budget,
            budget_seconds=self.config.budget_seconds,
            stats_dtype=self.config.stats_dtype,
            use_shared_memory=self.config.use_shared_memory,
        )
        warm_mode = getattr(self.config, "warm_mode", "exact")
        use_warm = warm is not None and warm_mode != "off"
        with get_tracer().span(
            "fs.fit",
            n_source=X_source.shape[0],
            n_target=X_target.shape[0],
            n_features=X_source.shape[1],
            warm=warm_mode if use_warm else "cold",
        ) as span:
            if use_warm:
                self.result_ = discovery.rediscover(
                    X_source, X_target, warm, mode=warm_mode
                )
            else:
                self.result_ = discovery.discover(X_source, X_target)
            span.tag(n_variant=self.result_.n_variant, n_tests=self.result_.n_tests)
        self.warm_state_ = discovery.warm_state_
        self.cache_stats_ = discovery.cache_stats_
        self.n_features_ = X_source.shape[1]
        events = get_event_log()
        if events.enabled:
            variant = set(self.result_.variant_indices.tolist())
            for j, (p, parents) in enumerate(
                zip(self.result_.p_values, self.result_.parent_sets)
            ):
                events.emit(
                    "fs.feature_decision",
                    feature=j,
                    p_value=float(p),
                    variant=j in variant,
                    parent_set=list(parents),
                )
        return self

    @property
    def variant_indices_(self) -> np.ndarray:
        check_is_fitted(self, "result_")
        return self.result_.variant_indices

    @property
    def invariant_indices_(self) -> np.ndarray:
        check_is_fitted(self, "result_")
        return self.result_.invariant_indices

    @property
    def n_variant_(self) -> int:
        check_is_fitted(self, "result_")
        return self.result_.n_variant

    def split(self, X) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(X_inv, X_var)`` column blocks of ``X``."""
        check_is_fitted(self, "result_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValidationError(
                f"X has {X.shape[1]} features, separator was fitted with "
                f"{self.n_features_}"
            )
        return X[:, self.invariant_indices_], X[:, self.variant_indices_]

    def merge(self, X_inv, X_var) -> np.ndarray:
        """Reassemble full-width samples in the original column order.

        This is the "same feature order as x̂" requirement of Eq. (12): the
        downstream model was trained on source samples with the native
        column layout, so reconstructed samples must match it.
        """
        check_is_fitted(self, "result_")
        X_inv = check_array(X_inv, name="X_inv")
        X_var = check_array(X_var, name="X_var")
        if X_inv.shape[0] != X_var.shape[0]:
            raise ValidationError("X_inv and X_var row counts differ")
        if X_inv.shape[1] != len(self.invariant_indices_):
            raise ValidationError("X_inv width does not match the invariant set")
        if X_var.shape[1] != len(self.variant_indices_):
            raise ValidationError("X_var width does not match the variant set")
        out = np.empty((X_inv.shape[0], self.n_features_))
        out[:, self.invariant_indices_] = X_inv
        out[:, self.variant_indices_] = X_var
        return out
