"""Operational drift monitoring on top of the FS machinery.

The paper's deployment story (§VI-F): network-management models stay frozen;
when the data distribution evolves *further*, only the FS + GAN adapter is
refreshed — and "FS+GAN only needs to be updated when the data distribution
undergoes significant changes".  :class:`DriftMonitor` operationalizes that
trigger: it re-runs intervention-target discovery on each incoming labeled
batch and reports how far the current variant set has moved from the
adapter's baseline, so an operator (or an automation loop) can decide when
``refit_adapter`` is worth its cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.feature_separation import FeatureSeparator
from repro.core.pipeline import FSGANPipeline
from repro.obs.export import get_event_log
from repro.obs.logging import get_logger
from repro.obs.metrics import get_metrics
from repro.utils.errors import ValidationError
from repro.utils.validation import check_array

_logger = get_logger("repro.core.monitor")


@dataclass
class DriftReport:
    """Outcome of one monitoring observation.

    Attributes
    ----------
    n_variant:
        Variant features found against the incoming batch.
    new_variant / vanished_variant:
        Features flagged now but not in the adapter's baseline set, and
        vice versa.
    jaccard:
        Overlap between the current and baseline variant sets (1.0 = the
        drift profile is unchanged; low values = the domain moved again).
    drifted:
        Whether the change exceeds the monitor's refresh policy.
    p_values:
        Per-feature p-values from the observation's FS run, or None when the
        producing separator exposed none.
    """

    n_variant: int
    new_variant: tuple[int, ...]
    vanished_variant: tuple[int, ...]
    jaccard: float
    drifted: bool
    p_values: np.ndarray | None = field(repr=False, default=None)


class DriftMonitor:
    """Watches a fitted :class:`FSGANPipeline` for renewed drift.

    Parameters
    ----------
    pipeline:
        A fitted FS+GAN pipeline whose baseline variant set anchors the
        comparison.
    jaccard_threshold:
        Observations whose variant set overlaps the baseline by less than
        this trigger ``drifted=True``.
    min_new_variants:
        Alternatively, at least this many *newly* flagged features trigger
        a refresh (catches drift that adds targets without removing any).
    """

    def __init__(
        self,
        pipeline: FSGANPipeline,
        *,
        jaccard_threshold: float = 0.5,
        min_new_variants: int = 3,
    ) -> None:
        if pipeline.separator_ is None:
            raise ValidationError("DriftMonitor requires a fitted pipeline")
        if not 0.0 <= jaccard_threshold <= 1.0:
            raise ValidationError("jaccard_threshold must be in [0, 1]")
        if min_new_variants < 1:
            raise ValidationError("min_new_variants must be >= 1")
        self.pipeline = pipeline
        self.jaccard_threshold = jaccard_threshold
        self.min_new_variants = min_new_variants
        self.history: list[DriftReport] = []

    @property
    def baseline_variant_set(self) -> set[int]:
        return set(self.pipeline.separator_.variant_indices_.tolist())

    def observe(self, X_batch) -> DriftReport:
        """Run FS against a fresh target batch and compare to the baseline."""
        X_batch = check_array(X_batch, name="X_batch", min_samples=2)
        if self.pipeline._fit_cache is None:
            raise ValidationError(
                "DriftMonitor needs the pipeline's training cache, which was "
                "dropped by release_training_cache(); re-fit the pipeline to "
                "resume monitoring"
            )
        Xs, _ = self.pipeline._fit_cache
        if X_batch.shape[1] != Xs.shape[1]:
            raise ValidationError(
                f"X_batch has {X_batch.shape[1]} features, pipeline expects "
                f"{Xs.shape[1]}"
            )
        separator = FeatureSeparator(self.pipeline.fs_config)
        separator.fit(Xs, self.pipeline.scaler_.transform(X_batch))
        current = set(separator.variant_indices_.tolist())
        baseline = self.baseline_variant_set
        union = current | baseline
        jaccard = len(current & baseline) / len(union) if union else 1.0
        new = tuple(sorted(current - baseline))
        vanished = tuple(sorted(baseline - current))
        drifted = jaccard < self.jaccard_threshold or len(new) >= self.min_new_variants
        report = DriftReport(
            n_variant=len(current),
            new_variant=new,
            vanished_variant=vanished,
            jaccard=jaccard,
            drifted=drifted,
            p_values=separator.result_.p_values,
        )
        self.history.append(report)
        registry = get_metrics()
        if registry.enabled:
            registry.counter("drift_observations_total").inc()
            if drifted:
                registry.counter("drift_detected_total").inc()
            registry.histogram("drift_jaccard").observe(jaccard)
            # scrapeable drift state: no log parsing needed (monitor.* family)
            registry.counter("monitor.observations_total").inc()
            registry.gauge("monitor.jaccard").set(jaccard)
            registry.gauge("monitor.n_variant").set(report.n_variant)
            registry.gauge("monitor.new_variants").set(len(new))
            registry.gauge("monitor.vanished_variants").set(len(vanished))
            if drifted:
                registry.counter("monitor.drifted_total").inc()
            p_values = report.p_values
            if p_values is not None and p_values.size:
                alpha = self.pipeline.fs_config.alpha
                registry.gauge("monitor.p_value_min").set(float(p_values.min()))
                registry.gauge("monitor.p_value_median").set(
                    float(np.median(p_values))
                )
                registry.gauge("monitor.frac_significant").set(
                    float(np.mean(p_values < alpha))
                )
        events = get_event_log()
        if events.enabled:
            events.emit(
                "drift.observe",
                n_variant=report.n_variant,
                n_new=len(new),
                n_vanished=len(vanished),
                jaccard=jaccard,
                drifted=drifted,
            )
            if drifted:
                events.emit(
                    "drift.alarm",
                    source="monitor",
                    jaccard=jaccard,
                    features=list(new),
                    n_vanished=len(vanished),
                )
        if drifted:
            _logger.info(
                "drift detected: jaccard=%.3f new=%d vanished=%d",
                jaccard, len(new), len(vanished),
            )
        return report

    def observe_and_refresh(self, X_batch) -> tuple[DriftReport, bool]:
        """Observe; refit the adapter iff the refresh policy fires.

        The downstream model is never touched (the paper's no-retraining
        property); only FS and the reconstruction model are refreshed.
        """
        report = self.observe(X_batch)
        if report.drifted:
            self.pipeline.refit_adapter(X_batch)
            get_metrics().counter("drift_refreshes_total").inc()
            get_event_log().emit("drift.refresh", jaccard=report.jaccard)
            _logger.info("adapter refreshed (jaccard=%.3f)", report.jaccard)
            return report, True
        return report, False
