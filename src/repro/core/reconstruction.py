"""Variant-feature reconstruction (§V-C, step 2).

:class:`VariantReconstructor` hides the choice of generative model behind a
single surface: ``fit(X_inv, X_var, y)`` on source data and
``reconstruct(X_inv)`` at inference.  The four strategies are exactly the
Table II ablation arms.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ReconstructionConfig
from repro.core.estimator import Estimator, register_estimator
from repro.gan.autoencoder import VanillaAutoencoder
from repro.gan.cgan import ConditionalGAN
from repro.gan.vae import ConditionalVAE
from repro.ml.preprocessing import one_hot
from repro.obs.trace import get_tracer
from repro.utils.errors import ValidationError
from repro.utils.validation import check_array, check_is_fitted


@register_estimator("variant_reconstructor")
class VariantReconstructor(Estimator):
    """Reconstructs domain-variant features from domain-invariant features.

    The underlying model is trained exclusively on **source** data; at
    inference it maps a target sample's invariant features to source-like
    variant values (Eq. 10), which is what removes the drift from the
    variant block without discarding its information content.
    """

    _fitted_attr = "model_"
    _state_scalars = ("n_classes_",)
    _state_estimators = ("model_",)

    def __init__(
        self,
        config: ReconstructionConfig | None = None,
        *,
        random_state=None,
    ) -> None:
        self.config = config or ReconstructionConfig()
        self.random_state = random_state
        self.model_ = None
        self.n_classes_: int | None = None

    def _build(self):
        cfg = self.config
        common = dict(
            hidden_size=cfg.hidden_size,
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            lr=cfg.lr,
            weight_decay=cfg.weight_decay,
            dtype=cfg.dtype,
            random_state=self.random_state,
        )
        if cfg.strategy == "gan":
            return ConditionalGAN(noise_dim=cfg.noise_dim, conditional=True, **common)
        if cfg.strategy == "nocond":
            return ConditionalGAN(noise_dim=cfg.noise_dim, conditional=False, **common)
        if cfg.strategy == "vae":
            return ConditionalVAE(latent_dim=cfg.noise_dim, **common)
        if cfg.strategy == "autoencoder":
            return VanillaAutoencoder(**common)
        raise ValidationError(f"unknown strategy {cfg.strategy!r}")

    def fit(self, X_inv, X_var, y=None, *, hooks=None) -> "VariantReconstructor":
        """Train the reconstruction model on source-domain blocks.

        ``y`` (integer labels) is required for the conditional GAN
        (discriminator conditioning, Eq. 7) and ignored by the others.
        ``hooks`` is forwarded to the underlying training loop as per-epoch
        telemetry callbacks (see :mod:`repro.obs.hooks`).
        """
        X_inv = check_array(X_inv, name="X_inv")
        X_var = check_array(X_var, name="X_var")
        if X_var.shape[1] == 0:
            # nothing to reconstruct — degenerate but legal (no drift found)
            self.model_ = _IdentityReconstructor(0)
            return self
        y_onehot = None
        if self.config.strategy == "gan":
            if y is None:
                raise ValidationError("the conditional GAN strategy requires labels y")
            y = np.asarray(y, dtype=np.int64)
            if y.shape != (X_inv.shape[0],):
                raise ValidationError("y must be a 1-D label vector matching X_inv")
            y_onehot = one_hot(y)
            self.n_classes_ = y_onehot.shape[1]
        self.model_ = self._build()
        with get_tracer().span(
            "reconstruction.fit",
            strategy=self.config.strategy,
            n_samples=X_inv.shape[0],
            n_invariant=X_inv.shape[1],
            n_variant=X_var.shape[1],
            epochs=self.config.epochs,
        ):
            self.model_.fit(X_inv, X_var, y_onehot, hooks=hooks)
        return self

    def reconstruct(self, X_inv, *, n_draws: int = 1, random_state=None) -> np.ndarray:
        """Generate source-like variant features for the given invariant block."""
        check_is_fitted(self, "model_")
        return self.model_.generate(X_inv, n_draws=n_draws, random_state=random_state)


@register_estimator("identity_reconstructor")
class _IdentityReconstructor(Estimator):
    """Placeholder used when the variant set is empty."""

    def __init__(self, n_variant: int = 0) -> None:
        self.n_variant = n_variant

    def generate(self, X_inv, *, n_draws: int = 1, random_state=None) -> np.ndarray:
        X_inv = check_array(X_inv, name="X_inv")
        return np.zeros((X_inv.shape[0], self.n_variant))
