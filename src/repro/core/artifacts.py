"""Versioned artifact store: the single disk format for trained estimators.

An *artifact* is one compressed ``.npz`` bundle (``allow_pickle=False``
throughout) holding a packed :class:`~repro.core.estimator.Estimator` plus a
JSON manifest: schema version, estimator kind and constructor params, a
content hash over every array payload, optional dataset/seed/config
provenance, optional drift-monitor thresholds, and the estimator's exported
serve plan.  ``load_artifact`` restores the estimator in a fresh process with
no live pipeline or training configuration required.

Format v1 (the original ``persistence.save_adapter`` layout) is detected by
its ``meta_json`` key and migrated on load through a read-only shim, so old
bundles keep working.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.config import FSConfig, ReconstructionConfig
from repro.core.estimator import (
    Estimator,
    decode_json,
    encode_json,
    pack_estimator,
    register_estimator,
    unpack_estimator,
)
from repro.utils.errors import ArtifactError
from repro.utils.validation import check_is_fitted

ARTIFACT_SCHEMA = "repro.artifact"
ARTIFACT_SCHEMA_VERSION = 2

#: allowed ``lifecycle_state`` values of the optional lineage manifest block
LIFECYCLE_STATES = ("candidate", "shadow", "active", "retired")

_MANIFEST_KEY = "__manifest__"


def _content_hash(arrays: dict) -> str:
    """sha256 over every array's name, dtype, shape and raw bytes."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(arr.dtype.str.encode("ascii"))
        digest.update(str(arr.shape).encode("ascii"))
        digest.update(arr.tobytes())
    return digest.hexdigest()


def _lineage_to_jsonable(lineage) -> dict | None:
    """Validate and normalize the optional lineage manifest block.

    The block is additive to schema v2: older readers ignore the extra
    manifest key, so no version bump is needed.  ``parent_hash`` is the
    content hash of the bundle this one was adapted from (None for
    generation 0), ``generation`` counts adaptation hops from the original
    source fit, and ``lifecycle_state`` tracks the rollout position.
    """
    if lineage is None:
        return None
    if not isinstance(lineage, dict):
        raise ArtifactError("lineage must be a dict or None")
    state = lineage.get("lifecycle_state", "candidate")
    if state not in LIFECYCLE_STATES:
        raise ArtifactError(
            f"unknown lifecycle_state {state!r} "
            f"(expected one of {', '.join(LIFECYCLE_STATES)})"
        )
    parent = lineage.get("parent_hash")
    if parent is not None and not isinstance(parent, str):
        raise ArtifactError("lineage parent_hash must be a hex string or None")
    generation = int(lineage.get("generation", 0))
    if generation < 0:
        raise ArtifactError("lineage generation must be >= 0")
    out = {
        "parent_hash": parent,
        "generation": generation,
        "lifecycle_state": state,
    }
    for key, value in lineage.items():
        if key not in out:
            out[key] = value
    return out


def _monitor_to_jsonable(monitor) -> dict | None:
    if monitor is None:
        return None
    if isinstance(monitor, dict):
        return dict(monitor)
    return {
        "jaccard_threshold": float(monitor.jaccard_threshold),
        "min_new_variants": int(monitor.min_new_variants),
    }


@register_estimator("fsgan_adapter")
class AdapterBundle(Estimator):
    """The shippable adapter of a :class:`FSGANPipeline`: scaler + FS + generator.

    In the paper's deployment model the downstream network-management model
    never leaves its host; what moves between systems is this lightweight
    bundle.  ``load_adapter`` grafts it onto a pipeline whose downstream
    model the caller already holds.
    """

    _fitted_attr = "reconstructor_"
    _state_estimators = ("scaler_", "separator_", "reconstructor_")

    def __init__(
        self,
        *,
        fs_config: FSConfig | None = None,
        reconstruction_config: ReconstructionConfig | None = None,
    ) -> None:
        self.fs_config = fs_config or FSConfig()
        self.reconstruction_config = reconstruction_config or ReconstructionConfig()
        self.scaler_ = None
        self.separator_ = None
        self.reconstructor_ = None

    @classmethod
    def from_pipeline(cls, pipeline) -> "AdapterBundle":
        check_is_fitted(pipeline, "reconstructor_")
        bundle = cls(
            fs_config=pipeline.fs_config,
            reconstruction_config=pipeline.reconstruction_config,
        )
        bundle.scaler_ = pipeline.scaler_
        bundle.separator_ = pipeline.separator_
        bundle.reconstructor_ = pipeline.reconstructor_
        return bundle


@dataclass
class LoadedArtifact:
    """A restored estimator together with its manifest."""

    estimator: Estimator
    manifest: dict = field(default_factory=dict)

    @property
    def kind(self) -> str:
        return self.manifest.get("kind", "")

    @property
    def provenance(self) -> dict:
        return self.manifest.get("provenance") or {}

    @property
    def monitor(self) -> dict | None:
        return self.manifest.get("monitor")

    @property
    def lineage(self) -> dict | None:
        """Optional lineage block: parent_hash / generation / lifecycle_state."""
        return self.manifest.get("lineage")


def save_artifact(estimator: Estimator, path, *, provenance=None, monitor=None,
                  lineage=None) -> Path:
    """Serialize ``estimator`` into a versioned ``.npz`` bundle at ``path``.

    ``provenance`` (dataset / seed / config dict) and ``monitor`` (drift
    thresholds) are recorded verbatim in the manifest; ``lineage`` is the
    optional adaptation-lineage block (``parent_hash`` / ``generation`` /
    ``lifecycle_state``, see :mod:`repro.adapt.lineage`).  A
    ``.manifest.json`` sidecar is written next to the bundle for tooling
    that wants the metadata without parsing npz.
    """
    path = Path(path)
    arrays = pack_estimator(estimator)
    header = decode_json(arrays["__estimator__"])
    try:
        plan = estimator.export_plan()
    except Exception:  # unfitted export or estimator-specific failure
        plan = None
    manifest = {
        "schema": ARTIFACT_SCHEMA,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "kind": header["kind"],
        "params": header["params"],
        "provenance": dict(provenance) if provenance else None,
        "monitor": _monitor_to_jsonable(monitor),
        "lineage": _lineage_to_jsonable(lineage),
        "plan": plan,
        "content_hash": _content_hash(arrays),
    }
    arrays[_MANIFEST_KEY] = encode_json(manifest)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    sidecar = path.with_suffix(path.suffix + ".manifest.json")
    sidecar.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path, *, verify_hash: bool = True) -> LoadedArtifact:
    """Restore an artifact bundle; no live pipeline or config is needed.

    Legacy v1 adapter files (``persistence.save_adapter`` output) are
    migrated transparently into an :class:`AdapterBundle`.
    """
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"no artifact file at {path}")
    try:
        data = np.load(path, allow_pickle=False)
    except Exception as exc:  # truncated / half-written bundle
        raise ArtifactError(f"unreadable artifact file {path}: {exc}") from exc
    if "meta_json" in data.files:
        return _load_legacy_adapter(data)
    if _MANIFEST_KEY not in data.files:
        raise ArtifactError(
            f"{path} is not a repro artifact (no manifest and no legacy header)"
        )
    manifest = decode_json(data[_MANIFEST_KEY])
    if manifest.get("schema") != ARTIFACT_SCHEMA:
        raise ArtifactError(f"unknown artifact schema {manifest.get('schema')!r}")
    version = manifest.get("schema_version")
    if version != ARTIFACT_SCHEMA_VERSION:
        raise ArtifactError(
            f"unsupported artifact schema version {version} "
            f"(this build reads version {ARTIFACT_SCHEMA_VERSION} and legacy v1)"
        )
    arrays = {name: data[name] for name in data.files if name != _MANIFEST_KEY}
    if verify_hash:
        expected = manifest.get("content_hash")
        actual = _content_hash(arrays)
        if expected != actual:
            raise ArtifactError(
                f"artifact content hash mismatch in {path}: "
                f"manifest says {expected}, payload hashes to {actual}"
            )
    estimator = unpack_estimator(arrays)
    return LoadedArtifact(estimator=estimator, manifest=manifest)


def _load_legacy_adapter(data) -> LoadedArtifact:
    """Migration shim for format v1 (the original flat adapter layout)."""
    from repro.causal.fnode import FNodeResult
    from repro.core.feature_separation import FeatureSeparator
    from repro.gan.cgan import ConditionalGAN
    from repro.ml.preprocessing import MinMaxScaler

    meta = json.loads(bytes(data["meta_json"].tobytes()).decode())
    if meta.get("format_version") != 1:
        raise ArtifactError(
            f"unsupported legacy adapter format version {meta.get('format_version')}"
        )

    scaler = MinMaxScaler()
    scaler.data_min_ = np.asarray(data["scaler_min"], dtype=np.float64)
    scaler.data_max_ = np.asarray(data["scaler_max"], dtype=np.float64)
    scaler._compute_scale()

    fs_config = FSConfig(**meta["fs_config"])
    separator = FeatureSeparator(fs_config)
    separator.n_features_ = int(meta["n_features"])
    separator.result_ = FNodeResult(
        variant_indices=np.asarray(data["variant_indices"]),
        invariant_indices=np.asarray(data["invariant_indices"]),
        p_values=np.asarray(data["p_values"]),
    )

    rec_meta = meta["reconstruction"]
    gan = ConditionalGAN(
        noise_dim=int(rec_meta["noise_dim"]),
        hidden_size=int(rec_meta["hidden_size"]),
        conditional=bool(rec_meta["conditional"]),
        epochs=1,
        random_state=0,
    )
    gan.n_invariant_ = int(rec_meta["n_invariant"])
    gan.n_variant_ = int(rec_meta["n_variant"])
    gan.n_classes_ = int(rec_meta["n_classes"]) if rec_meta["n_classes"] else 0
    gan._rng = np.random.default_rng(0)
    rng = np.random.default_rng(0)
    gan.generator_ = gan._build_generator(rng)
    gan.discriminator_ = gan._build_discriminator(rng)
    gan.generator_.load_state_dict(
        {k.removeprefix("generator."): data[k] for k in data.files
         if k.startswith("generator.")}
    )
    gan.discriminator_.load_state_dict(
        {k.removeprefix("discriminator."): data[k] for k in data.files
         if k.startswith("discriminator.")}
    )

    from repro.core.reconstruction import VariantReconstructor

    reconstruction_config = ReconstructionConfig(
        strategy=rec_meta["strategy"],
        noise_dim=int(rec_meta["noise_dim"]),
        hidden_size=int(rec_meta["hidden_size"]),
    )
    reconstructor = VariantReconstructor(reconstruction_config)
    reconstructor.model_ = gan
    reconstructor.n_classes_ = gan.n_classes_ or None

    bundle = AdapterBundle(
        fs_config=fs_config, reconstruction_config=reconstruction_config
    )
    bundle.scaler_ = scaler
    bundle.separator_ = separator
    bundle.reconstructor_ = reconstructor
    manifest = {
        "schema": ARTIFACT_SCHEMA,
        "schema_version": 1,
        "migrated": True,
        "kind": "fsgan_adapter",
        "params": None,
        "provenance": None,
        "monitor": None,
        "plan": None,
        "content_hash": None,
    }
    return LoadedArtifact(estimator=bundle, manifest=manifest)


class ArtifactStore:
    """Directory of named, versioned artifact bundles.

    Thin convenience over :func:`save_artifact` / :func:`load_artifact`:
    ``store.save("adapter", est)`` writes ``<root>/adapter.npz`` (plus the
    JSON sidecar); ``store.load("adapter")`` restores it; ``store.list()``
    enumerates names with their manifests.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)

    def _path(self, name: str) -> Path:
        return self.root / f"{name}.npz"

    def save(self, name: str, estimator: Estimator, *, provenance=None,
             monitor=None) -> Path:
        return save_artifact(
            estimator, self._path(name), provenance=provenance, monitor=monitor
        )

    def load(self, name: str) -> LoadedArtifact:
        return load_artifact(self._path(name))

    def list(self) -> dict:
        """Map of artifact name → manifest for every bundle under ``root``."""
        out = {}
        if not self.root.exists():
            return out
        for path in sorted(self.root.glob("*.npz")):
            sidecar = path.with_suffix(path.suffix + ".manifest.json")
            if sidecar.exists():
                out[path.stem] = json.loads(sidecar.read_text())
            else:
                try:
                    out[path.stem] = load_artifact(path).manifest
                except ArtifactError:
                    continue
        return out
