"""Metrics registry: counters, gauges and histograms with percentiles.

The registry backs the §VI-D scaling story with continuously collected
numbers — e.g. ``ci_tests_total`` (counter), ``ci_test_seconds`` and
``gan_epoch_seconds`` (histograms with p50/p90/p99 summaries), or
``fs_n_variant`` (gauge).  As with tracing, the process-global default is
:data:`NULL_REGISTRY`, whose metric objects are shared no-ops, so
instrumentation in hot loops is free when metrics are disabled.
"""

from __future__ import annotations

import json

import numpy as np

from repro.utils.errors import ValidationError


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValidationError("counters only go up; use a gauge instead")
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming collection of observations with percentile summaries."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) of the observations."""
        if not 0.0 <= q <= 100.0:
            raise ValidationError("percentile q must be in [0, 100]")
        if not self.values:
            return float("nan")
        return float(np.percentile(self.values, q))

    def summary(self) -> dict:
        """Count, sum, mean, min/max and the standard percentile trio."""
        if not self.values:
            return {"count": 0}
        arr = np.asarray(self.values)
        p50, p90, p99 = np.percentile(arr, (50, 90, 99))
        return {
            "count": int(arr.size),
            "sum": float(arr.sum()),
            "mean": float(arr.mean()),
            "min": float(arr.min()),
            "max": float(arr.max()),
            "p50": float(p50),
            "p90": float(p90),
            "p99": float(p99),
        }

    def to_dict(self) -> dict:
        return {"type": "histogram", **self.summary()}


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


class MetricsRegistry:
    """Named metric store; metrics are created lazily on first access."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls()
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValidationError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def to_dict(self) -> dict:
        return {name: self._metrics[name].to_dict() for name in self.names()}

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """No-op registry handing out shared inert metric objects."""

    enabled = False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM


NULL_REGISTRY = NullRegistry()
_registry: MetricsRegistry = NULL_REGISTRY


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry (no-op unless one is installed)."""
    return _registry


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` globally (None resets); returns the previous one."""
    global _registry
    if registry is not None and not isinstance(registry, MetricsRegistry):
        raise ValidationError("set_metrics expects a MetricsRegistry or None")
    previous = _registry
    _registry = registry if registry is not None else NULL_REGISTRY
    return previous
