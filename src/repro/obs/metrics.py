"""Metrics registry: counters, gauges and histograms with percentiles.

The registry backs the §VI-D scaling story with continuously collected
numbers — e.g. ``ci_tests_total`` (counter), ``ci_test_seconds`` and
``gan_epoch_seconds`` (histograms with p50/p90/p99 summaries), or
``fs_n_variant`` (gauge).  As with tracing, the process-global default is
:data:`NULL_REGISTRY`, whose metric objects are shared no-ops, so
instrumentation in hot loops is free when metrics are disabled.

Two properties matter for long-running serve processes:

* **Bounded memory.**  :class:`Histogram` is backed by a
  :class:`~repro.obs.sketch.QuantileSketch`: exact (bit-identical to the
  old list-backed percentiles) below a small-n cutoff, then a fixed-size
  reservoir with exact count/sum/min/max — observing forever never grows
  the process.
* **Labeled families.**  Every accessor takes optional keyword labels
  (``registry.histogram("serve.stage_seconds", stage="scale")``); each
  distinct label set is its own time series within one named family, the
  shape Prometheus exposition expects (see ``repro.obs.exporters``).
"""

from __future__ import annotations

import json

from repro.obs.sketch import QuantileSketch
from repro.utils.errors import ValidationError


def labels_suffix(labels: dict) -> str:
    """Canonical ``{k=v,...}`` rendering of a label set (sorted, stable)."""
    if not labels:
        return ""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValidationError("counters only go up; use a gauge instead")
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming observations with percentile summaries, in fixed memory.

    Exact below the sketch's small-n cutoff; beyond it, quantiles come
    from a bounded reservoir (documented ~2% rank-error tolerance at the
    default capacity) while count/sum/mean/min/max stay exact.
    """

    __slots__ = ("_sketch",)

    def __init__(self) -> None:
        self._sketch = QuantileSketch()

    def observe(self, value: float) -> None:
        self._sketch.add(value)

    @property
    def count(self) -> int:
        return self._sketch.count

    @property
    def values(self) -> list[float]:
        """The retained sample buffer (every value on the exact path)."""
        return list(self._sketch._values)

    @property
    def exact(self) -> bool:
        """True while percentiles are exact (stream below the cutoff)."""
        return self._sketch.exact

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) of the observations."""
        return self._sketch.percentile(q)

    def summary(self) -> dict:
        """Count, sum, mean, min/max and the standard percentile trio."""
        return self._sketch.summary()

    def to_dict(self) -> dict:
        return {"type": "histogram", **self._sketch.to_dict()}


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


class MetricsRegistry:
    """Named metric store; metrics are created lazily on first access.

    A *family* is every series sharing a metric name; keyword labels
    select one series within it.  ``counter("x")`` and
    ``counter("x", tenant="a")`` are two series of family ``x`` and must
    agree on the metric type.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._families: dict[str, type] = {}
        self._series: dict[str, tuple[str, dict]] = {}

    def _get(self, name: str, cls, labels: dict):
        family_cls = self._families.get(name)
        if family_cls is None:
            self._families[name] = cls
        elif family_cls is not cls:
            raise ValidationError(
                f"metric {name!r} already registered as {family_cls.__name__}"
            )
        key = name + labels_suffix(labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls()
            self._metrics[key] = metric
            self._series[key] = (name, dict(labels))
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(name, Counter, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(name, Gauge, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(name, Histogram, labels)

    def names(self) -> list[str]:
        """Sorted series keys (``family{label=value,...}`` for labeled ones)."""
        return sorted(self._metrics)

    def collect(self) -> list[tuple[str, str, list[tuple[dict, object]]]]:
        """Family-grouped snapshot: ``(name, type, [(labels, metric), ...])``.

        The shape exporters consume; series within a family keep their
        registration-independent sorted order.
        """
        families: dict[str, list[tuple[dict, object]]] = {}
        for key in self.names():
            name, labels = self._series[key]
            families.setdefault(name, []).append((labels, self._metrics[key]))
        type_names = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}
        return [
            (name, type_names[self._families[name]], series)
            for name, series in sorted(families.items())
        ]

    def to_dict(self) -> dict:
        return {name: self._metrics[name].to_dict() for name in self.names()}

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """No-op registry handing out shared inert metric objects."""

    enabled = False

    def counter(self, name: str, **labels) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str, **labels) -> Histogram:
        return _NULL_HISTOGRAM


NULL_REGISTRY = NullRegistry()
_registry: MetricsRegistry = NULL_REGISTRY


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry (no-op unless one is installed)."""
    return _registry


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` globally (None resets); returns the previous one."""
    global _registry
    if registry is not None and not isinstance(registry, MetricsRegistry):
        raise ValidationError("set_metrics expects a MetricsRegistry or None")
    previous = _registry
    _registry = registry if registry is not None else NULL_REGISTRY
    return previous
