"""Hierarchical span tracing for the FS+GAN pipeline.

A :class:`Tracer` records a forest of nested :class:`Span` objects — wall
time, tags and children — via a context manager::

    tracer = Tracer()
    with tracer.span("fs.discover", n_features=112) as sp:
        ...
        sp.tag(n_tests=n_tests)

The default global tracer is :data:`NULL_TRACER`, a no-op whose ``span``
returns a shared, stateless context manager — instrumented hot paths cost a
single attribute lookup and method call when tracing is disabled, and write
no state at all (tier-1 timing and RNG behaviour are unaffected).

Traces export as JSON (``to_dict`` / ``to_json``) or as a flame-style text
tree (``format_tree``) mirroring the §VI-D cost decomposition.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

from repro.utils.errors import ValidationError


class Span:
    """One timed operation: name, tags, wall-clock bounds and child spans."""

    __slots__ = ("name", "tags", "start", "end", "children")

    def __init__(self, name: str, tags: dict | None = None) -> None:
        self.name = name
        self.tags = dict(tags) if tags else {}
        self.start = time.perf_counter()
        self.end: float | None = None
        self.children: list["Span"] = []

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to now for a still-open span)."""
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def tag(self, **tags) -> "Span":
        """Attach/overwrite tags while the span is running."""
        self.tags.update(tags)
        return self

    def find(self, name: str) -> "Span | None":
        """Depth-first search of the subtree (including self) by span name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self, *, origin: float | None = None) -> dict:
        """JSON-ready representation; offsets are relative to ``origin``."""
        base = self.start if origin is None else origin
        return {
            "name": self.name,
            "start": self.start - base,
            "duration": self.duration,
            "tags": _jsonable(self.tags),
            "children": [c.to_dict(origin=base) for c in self.children],
        }


class _NullSpan:
    """Stateless stand-in yielded by the null tracer."""

    __slots__ = ()
    name = ""
    tags: dict = {}
    children: list = []
    duration = 0.0

    def tag(self, **tags) -> "_NullSpan":
        return self

    def find(self, name: str):
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a forest of nested spans via a thread-unsafe stack.

    ``enabled`` distinguishes a recording tracer from :data:`NULL_TRACER`;
    hot paths may use it to skip even the cost of building tag dicts.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, **tags):
        """Open a child span of the innermost running span (or a new root)."""
        sp = Span(name, tags)
        if self._stack:
            self._stack[-1].children.append(sp)
        else:
            self.roots.append(sp)
        self._stack.append(sp)
        try:
            yield sp
        finally:
            sp.end = time.perf_counter()
            self._stack.pop()

    def find(self, name: str) -> Span | None:
        """First span with the given name, depth-first over all roots."""
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> dict:
        origin = self.roots[0].start if self.roots else 0.0
        return {"spans": [r.to_dict(origin=origin) for r in self.roots]}

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def format_tree(self) -> str:
        """Flame-style text rendering, one line per span."""
        lines: list[str] = []

        def render(span: Span, depth: int) -> None:
            tags = " ".join(f"{k}={v}" for k, v in span.tags.items())
            pad = "  " * depth
            lines.append(
                f"{pad}{span.name:<{max(1, 40 - 2 * depth)}} "
                f"{span.duration * 1000:10.2f} ms{('  ' + tags) if tags else ''}"
            )
            for child in span.children:
                render(child, depth + 1)

        for root in self.roots:
            render(root, 0)
        return "\n".join(lines)


class NullTracer(Tracer):
    """No-op tracer: records nothing, allocates nothing per span."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, **tags):  # type: ignore[override]
        return NULL_SPAN


NULL_TRACER = NullTracer()
_tracer: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-global tracer (the no-op tracer unless one is installed)."""
    return _tracer


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` globally (None resets to the no-op); returns the old one."""
    global _tracer
    if tracer is not None and not isinstance(tracer, Tracer):
        raise ValidationError("set_tracer expects a Tracer or None")
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer):
    """Temporarily install ``tracer`` as the global tracer."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


class Stopwatch:
    """Tiny timing helper for code that needs the elapsed seconds as a value."""

    __slots__ = ("start", "end")

    def __enter__(self) -> "Stopwatch":
        self.start = time.perf_counter()
        self.end: float | None = None
        return self

    def __exit__(self, *exc) -> None:
        self.end = time.perf_counter()

    @property
    def seconds(self) -> float:
        return (self.end if self.end is not None else time.perf_counter()) - self.start


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays so json.dumps succeeds."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (AttributeError, ValueError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    return value
