"""Prometheus text-format exposition over stdlib ``http.server``.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
snapshot into text-format 0.0.4 exposition: counters and gauges map
directly, histograms export as *summaries* (``{quantile="0.5|0.9|0.99"}``
series plus ``_sum`` / ``_count``), and dotted repro metric names
(``serve.latency``) sanitize to Prometheus names (``serve_latency``).

:class:`PrometheusExporter` serves that rendering from a daemon-thread
``ThreadingHTTPServer`` — zero dependencies, opt-in, and scrape-safe
against a live registry (rendering works off snapshots, and the bounded
histogram sketches copy their sample buffer before quantiling).

    from repro.obs.exporters import PrometheusExporter

    with PrometheusExporter(port=9464) as exp:
        ...                      # curl http://127.0.0.1:9464/metrics
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import Counter, Gauge, Histogram, get_metrics
from repro.utils.errors import ValidationError

__all__ = ["PrometheusExporter", "render_prometheus", "sanitize_metric_name"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = ((0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"))


def sanitize_metric_name(name: str) -> str:
    """Coerce a repro metric name into a legal Prometheus metric name."""
    name = _NAME_BAD_CHARS.sub("_", name)
    if not name or not _NAME_OK.match(name):
        name = "_" + name
    return name


def _escape_label_value(value) -> str:
    return (str(value)
            .replace("\\", r"\\")
            .replace("\n", r"\n")
            .replace('"', r'\"'))


def _render_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_metric_name(str(k))}="{_escape_label_value(labels[k])}"'
        for k in sorted(labels)
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(registry=None) -> str:
    """Text-format 0.0.4 exposition of a registry snapshot."""
    registry = registry if registry is not None else get_metrics()
    lines: list[str] = []
    for family, type_name, series in registry.collect():
        name = sanitize_metric_name(family)
        prom_type = {"counter": "counter", "gauge": "gauge",
                     "histogram": "summary"}[type_name]
        lines.append(f"# TYPE {name} {prom_type}")
        for labels, metric in series:
            if isinstance(metric, Counter):
                lines.append(f"{name}{_render_labels(labels)} {metric.value}")
            elif isinstance(metric, Gauge):
                if metric.value is None:
                    continue
                lines.append(
                    f"{name}{_render_labels(labels)} {_fmt(metric.value)}"
                )
            elif isinstance(metric, Histogram):
                summary = metric.summary()
                for q, q_label in _QUANTILES:
                    key = f"p{int(q * 100)}"
                    if key not in summary:
                        continue
                    q_labels = dict(labels, quantile=q_label)
                    lines.append(
                        f"{name}{_render_labels(q_labels)} {_fmt(summary[key])}"
                    )
                suffix = _render_labels(labels)
                lines.append(f"{name}_sum{suffix} {_fmt(summary.get('sum', 0.0))}")
                lines.append(f"{name}_count{suffix} {summary['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


class _Handler(BaseHTTPRequestHandler):
    """Serves /metrics (and /) from the exporter's registry source."""

    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path.split("?", 1)[0] not in ("/", "/metrics"):
            self.send_error(404, "only /metrics is served")
            return
        try:
            body = render_prometheus(self.server.registry_source()).encode()
        except Exception as exc:  # registry raced or misbehaved: report, not die
            self.send_error(500, f"render failed: {exc}")
            return
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # keep scrapes off stderr
        return None


class PrometheusExporter:
    """Background exposition endpoint for a metrics registry.

    Parameters
    ----------
    registry:
        Registry to expose.  None (default) re-reads the process-global
        registry on every scrape, so a later ``set_metrics`` is picked up.
    host / port:
        Bind address; ``port=0`` picks a free ephemeral port (see
        :attr:`port` after :meth:`start`).
    """

    def __init__(self, registry=None, *, host: str = "127.0.0.1",
                 port: int = 9464) -> None:
        self._registry = registry
        self.host = host
        self._requested_port = int(port)
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def registry_source(self):
        return self._registry if self._registry is not None else get_metrics()

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "PrometheusExporter":
        if self._server is not None:
            raise ValidationError("exporter already started")
        server = ThreadingHTTPServer((self.host, self._requested_port), _Handler)
        server.daemon_threads = True
        server.registry_source = self.registry_source
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-prometheus", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "PrometheusExporter":
        return self.start() if not self.running else self

    def __exit__(self, *exc) -> None:
        self.stop()
