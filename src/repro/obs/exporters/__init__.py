"""Metric exporters: Prometheus text exposition and periodic snapshots.

Both exporters are opt-in and read whatever registry they are pointed at
(the process-global one by default); with no exporter running, the
telemetry plane costs nothing beyond the no-op collector lookups.
"""

from repro.obs.exporters.prometheus import (
    PrometheusExporter,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.exporters.snapshot import SnapshotWriter

__all__ = [
    "PrometheusExporter",
    "SnapshotWriter",
    "render_prometheus",
    "sanitize_metric_name",
]
