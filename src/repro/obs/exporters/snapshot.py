"""Periodic metric snapshots for headless runs (JSONL or CSV).

Where the Prometheus endpoint assumes something scrapes you,
:class:`SnapshotWriter` pushes: every ``interval`` seconds (or on demand
via :meth:`write`) it appends the registry's current state to a file —
one JSON object per line, or long-format CSV rows
(``snapshot,metric,field,value``) — so CI jobs and batch runs get a
telemetry timeline with zero infrastructure.

Snapshots are stamped with a monotonically increasing index and elapsed
seconds since the writer was created (never wall-clock), keeping
re-runs of the same configuration diffable.
"""

from __future__ import annotations

import csv
import json
import os
import threading
import time

from repro.obs.metrics import get_metrics
from repro.utils.errors import ValidationError

__all__ = ["SnapshotWriter"]

CSV_FIELDS = ("snapshot", "metric", "field", "value")


class SnapshotWriter:
    """Appends registry snapshots to a JSONL or CSV file.

    Parameters
    ----------
    path:
        Destination file; the format is inferred from the suffix
        (``.csv`` → long-format CSV, anything else → JSONL) unless
        ``fmt`` overrides it.
    registry:
        Registry to snapshot.  None re-reads the process-global registry
        at each write.
    interval:
        Optional period in seconds for the background thread started by
        :meth:`start` (or by entering the context manager).
    """

    def __init__(self, path, *, registry=None, interval: float | None = None,
                 fmt: str | None = None) -> None:
        self.path = os.fspath(path)
        if fmt is None:
            fmt = "csv" if self.path.lower().endswith(".csv") else "jsonl"
        if fmt not in ("jsonl", "csv"):
            raise ValidationError("snapshot fmt must be 'jsonl' or 'csv'")
        if interval is not None and interval <= 0:
            raise ValidationError("snapshot interval must be > 0 seconds")
        self.fmt = fmt
        self.interval = interval
        self._registry = registry
        self._origin = time.perf_counter()
        self._index = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._wrote_header = False

    def _registry_now(self):
        return self._registry if self._registry is not None else get_metrics()

    def write(self) -> int:
        """Append one snapshot now; returns its index."""
        snapshot = self._registry_now().to_dict()
        with self._lock:
            index = self._index
            self._index += 1
            elapsed = time.perf_counter() - self._origin
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(self.path, "a", encoding="utf-8", newline="") as fh:
                if self.fmt == "jsonl":
                    fh.write(json.dumps({
                        "snapshot": index,
                        "elapsed_seconds": round(elapsed, 6),
                        "metrics": snapshot,
                    }) + "\n")
                else:
                    writer = csv.writer(fh)
                    if not self._wrote_header and fh.tell() == 0:
                        writer.writerow(CSV_FIELDS)
                    self._wrote_header = True
                    for metric, payload in snapshot.items():
                        for field, value in payload.items():
                            if field == "type":
                                continue
                            writer.writerow([index, metric, field, value])
        return index

    # -- background mode -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SnapshotWriter":
        """Start the periodic writer thread (requires ``interval``)."""
        if self.interval is None:
            raise ValidationError("start() needs an interval; use write()")
        if self.running:
            raise ValidationError("snapshot writer already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-snapshots", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.write()

    def stop(self, *, final_write: bool = True) -> None:
        """Stop the thread; by default appends one last snapshot."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_write:
            self.write()

    def __enter__(self) -> "SnapshotWriter":
        if self.interval is not None and not self.running:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(final_write=exc_type is None)

    # -- reading back ---------------------------------------------------------

    @staticmethod
    def read(path) -> list[dict]:
        """Parse a snapshot file back into a list of snapshot dicts.

        CSV rows are re-nested into the JSONL shape
        (``{"snapshot": i, "metrics": {name: {field: value}}}``), so both
        formats round-trip through the same structure.
        """
        path = os.fspath(path)
        if path.lower().endswith(".csv"):
            with open(path, encoding="utf-8", newline="") as fh:
                rows = list(csv.DictReader(fh))
            snapshots: dict[int, dict] = {}
            for row in rows:
                snap = snapshots.setdefault(
                    int(row["snapshot"]),
                    {"snapshot": int(row["snapshot"]), "metrics": {}},
                )
                value = row["value"]
                try:
                    value = json.loads(value)
                except (json.JSONDecodeError, TypeError):
                    pass
                snap["metrics"].setdefault(row["metric"], {})[row["field"]] = value
            return [snapshots[i] for i in sorted(snapshots)]
        with open(path, encoding="utf-8") as fh:
            return [json.loads(line) for line in fh if line.strip()]
