"""Run-bundle inspection: the backend of the ``repro obs`` subcommand.

Operates on the directories :class:`~repro.obs.export.RunRecorder` writes
(``manifest.json`` / ``metrics.json`` / ``events.jsonl`` / ``trace.json``)
— tolerant of partial bundles, so a bare ``--metrics-out`` file inspects
too.

* :func:`summarize_run` — one screen: manifest, latency histograms
  (count / p50 / p90 / p99), counters & gauges, drift state, event mix.
* :func:`tail_events` — the last N events, optionally filtered by kind.
* :func:`diff_runs` — metric-by-metric comparison of two bundles with
  absolute and relative deltas (the point of timestamp-free, seed-keyed
  run directories).
"""

from __future__ import annotations

import json
import os

from repro.utils.errors import ValidationError

__all__ = ["diff_runs", "load_run", "summarize_run", "tail_events"]


def load_run(run_dir) -> dict:
    """Read whatever bundle files exist under ``run_dir``.

    ``run_dir`` may also point straight at a ``metrics.json`` file.
    Returns ``{"manifest": ..., "metrics": ..., "events": [...]}`` with
    None/empty placeholders for missing pieces.
    """
    run_dir = os.fspath(run_dir)
    if os.path.isfile(run_dir):
        with open(run_dir, encoding="utf-8") as fh:
            return {"manifest": None, "metrics": json.load(fh), "events": []}
    if not os.path.isdir(run_dir):
        raise ValidationError(f"no run bundle at {run_dir}")

    def read_json(name):
        path = os.path.join(run_dir, name)
        if not os.path.exists(path):
            return None
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)

    events = []
    events_path = os.path.join(run_dir, "events.jsonl")
    if os.path.exists(events_path):
        with open(events_path, encoding="utf-8") as fh:
            events = [json.loads(line) for line in fh if line.strip()]
    return {
        "manifest": read_json("manifest.json"),
        "metrics": read_json("metrics.json") or {},
        "events": events,
    }


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def summarize_run(run_dir) -> str:
    """Human-readable one-screen report of a run bundle."""
    bundle = load_run(run_dir)
    lines: list[str] = [f"run: {os.fspath(run_dir)}"]
    if bundle["manifest"]:
        pairs = " ".join(f"{k}={v}" for k, v in sorted(bundle["manifest"].items()))
        lines.append(f"manifest: {pairs}")

    metrics = bundle["metrics"]
    histograms = {k: v for k, v in metrics.items()
                  if v.get("type") == "histogram" and v.get("count", 0) > 0}
    counters = {k: v for k, v in metrics.items() if v.get("type") == "counter"}
    gauges = {k: v for k, v in metrics.items() if v.get("type") == "gauge"}

    if histograms:
        lines.append("")
        lines.append(f"{'histogram':<44} {'count':>8} {'p50':>12} "
                     f"{'p90':>12} {'p99':>12}")
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"{name:<44} {h['count']:>8} {h['p50']:>12.6g} "
                f"{h['p90']:>12.6g} {h['p99']:>12.6g}"
                + ("  ~" if h.get("approx") else "")
            )
    if counters:
        lines.append("")
        lines.append(f"{'counter':<44} {'value':>8}")
        for name in sorted(counters):
            lines.append(f"{name:<44} {counters[name]['value']:>8}")
    if gauges:
        lines.append("")
        lines.append(f"{'gauge':<44} {'value':>12}")
        for name in sorted(gauges):
            lines.append(
                f"{name:<44} {_fmt_value(gauges[name]['value']):>12}"
            )

    drift_gauges = {k: v for k, v in gauges.items()
                    if ".psi" in k or ".ks" in k or "jaccard" in k}
    alarms = [e for e in bundle["events"] if e.get("kind") == "drift.alarm"]
    if drift_gauges or alarms:
        lines.append("")
        lines.append(f"drift: {len(alarms)} alarm(s)")
        for event in alarms[:5]:
            feats = event.get("features", [])
            lines.append(
                f"  alarm from {event.get('source', '?')}: "
                f"psi_max={_fmt_value(event.get('psi_max', 'n/a'))} "
                f"features={feats if len(feats) <= 8 else feats[:8] + ['…']}"
            )

    if bundle["events"]:
        kinds: dict[str, int] = {}
        for event in bundle["events"]:
            kinds[event.get("kind", "?")] = kinds.get(event.get("kind", "?"), 0) + 1
        lines.append("")
        lines.append("events: " + ", ".join(
            f"{kind}×{kinds[kind]}" for kind in sorted(kinds)
        ))
    if len(lines) == 1:
        lines.append("(empty bundle: no metrics, no events)")
    return "\n".join(lines)


def tail_events(run_dir, *, n: int = 20, kind: str | None = None) -> str:
    """The last ``n`` events of a bundle, newest last, optionally filtered."""
    if n < 1:
        raise ValidationError("tail needs n >= 1")
    events = load_run(run_dir)["events"]
    if kind is not None:
        events = [e for e in events if e.get("kind") == kind]
    if not events:
        suffix = f" of kind {kind!r}" if kind else ""
        return f"(no events{suffix})"
    lines = []
    for event in events[-n:]:
        fields = " ".join(
            f"{k}={_fmt_value(v)}" for k, v in event.items() if k != "kind"
        )
        lines.append(f"{event.get('kind', '?'):<24} {fields}")
    return "\n".join(lines)


def _flat_metrics(metrics: dict) -> dict[str, float]:
    """Flatten a metrics dict to comparable scalars (``name.field``)."""
    flat: dict[str, float] = {}
    for name, payload in metrics.items():
        for field, value in payload.items():
            if field == "type" or not isinstance(value, (int, float)):
                continue
            flat[f"{name}.{field}" if field != "value" else name] = value
    return flat


def diff_runs(run_a, run_b) -> str:
    """Metric-level diff of two bundles: value A, value B, delta, pct."""
    flat_a = _flat_metrics(load_run(run_a)["metrics"])
    flat_b = _flat_metrics(load_run(run_b)["metrics"])
    keys = sorted(set(flat_a) | set(flat_b))
    if not keys:
        return "(no metrics to compare)"
    lines = [
        f"A: {os.fspath(run_a)}",
        f"B: {os.fspath(run_b)}",
        "",
        f"{'metric':<44} {'A':>12} {'B':>12} {'delta':>12} {'pct':>8}",
    ]
    for key in keys:
        a, b = flat_a.get(key), flat_b.get(key)
        if a is None or b is None:
            side = "only in B" if a is None else "only in A"
            value = b if a is None else a
            lines.append(f"{key:<44} {side:>12} {_fmt_value(value):>12}")
            continue
        delta = b - a
        pct = f"{100.0 * delta / a:+.1f}%" if a else "n/a"
        lines.append(
            f"{key:<44} {_fmt_value(a):>12} {_fmt_value(b):>12} "
            f"{_fmt_value(delta):>12} {pct:>8}"
        )
    return "\n".join(lines)
