"""Training telemetry hooks for the generative-model training loops.

The CTGAN / VAE / vanilla-AE ``fit`` loops accept a ``hooks`` argument and
invoke it around training::

    hook.on_train_begin(model, n_epochs)
    hook.on_epoch_end(epoch, {"d_loss": ..., "g_loss": ..., "seconds": ...})
    hook.on_train_end({"epochs": ...})

``hooks`` may be None (default — the shared no-op, zero overhead), a single
:class:`TrainingHook`, or a list of them; loops normalize via
:func:`as_hook`.  Hooks advertising ``wants_grad_norms = True`` additionally
receive per-epoch global gradient L2 norms (computed from the optimizers via
:meth:`repro.nn.optimizers.Optimizer.grad_norm`) — the norms are only
computed when some hook asks, keeping the silent path untouched.
"""

from __future__ import annotations

from repro.obs.logging import get_logger
from repro.obs.metrics import get_metrics
from repro.utils.errors import ValidationError


class TrainingHook:
    """Base callback; subclasses override the phases they care about.

    ``active`` is False only on the shared null hook, letting training loops
    skip per-epoch timing entirely when no telemetry is requested.
    """

    active = True
    wants_grad_norms = False

    def on_train_begin(self, model, n_epochs: int) -> None:
        pass

    def on_epoch_end(self, epoch: int, logs: dict) -> None:
        pass

    def on_train_end(self, logs: dict) -> None:
        pass


class _NullHook(TrainingHook):
    active = False


NULL_HOOK = _NullHook()


class HookList(TrainingHook):
    """Composite hook fanning every callback out to its members in order."""

    def __init__(self, hooks) -> None:
        self.hooks = list(hooks)
        for hook in self.hooks:
            if not isinstance(hook, TrainingHook):
                raise ValidationError(
                    f"hooks must be TrainingHook instances, got {type(hook).__name__}"
                )

    @property
    def wants_grad_norms(self) -> bool:  # type: ignore[override]
        return any(h.wants_grad_norms for h in self.hooks)

    def on_train_begin(self, model, n_epochs: int) -> None:
        for hook in self.hooks:
            hook.on_train_begin(model, n_epochs)

    def on_epoch_end(self, epoch: int, logs: dict) -> None:
        for hook in self.hooks:
            hook.on_epoch_end(epoch, logs)

    def on_train_end(self, logs: dict) -> None:
        for hook in self.hooks:
            hook.on_train_end(logs)


def as_hook(hooks) -> TrainingHook:
    """Normalize None / a hook / a sequence of hooks to one TrainingHook."""
    if hooks is None:
        return NULL_HOOK
    if isinstance(hooks, TrainingHook):
        return hooks
    return HookList(hooks)


class HistoryHook(TrainingHook):
    """Records every per-epoch ``logs`` dict (plus begin/end call counts)."""

    def __init__(self, *, grad_norms: bool = False) -> None:
        self.wants_grad_norms = grad_norms
        self.epochs: list[dict] = []
        self.n_train_begin = 0
        self.n_train_end = 0
        self.model = None

    def on_train_begin(self, model, n_epochs: int) -> None:
        self.n_train_begin += 1
        self.model = model

    def on_epoch_end(self, epoch: int, logs: dict) -> None:
        self.epochs.append({"epoch": epoch, **logs})

    def on_train_end(self, logs: dict) -> None:
        self.n_train_end += 1


class MetricsHook(TrainingHook):
    """Feeds per-epoch scalars into the global metrics registry.

    Every numeric entry of ``logs`` becomes a histogram observation named
    ``<prefix>_<key>`` (e.g. ``gan_epoch_seconds`` from the ``seconds``
    timing with the default ``prefix='gan_epoch'``).
    """

    def __init__(self, prefix: str = "gan_epoch", *, grad_norms: bool = False) -> None:
        self.prefix = prefix
        self.wants_grad_norms = grad_norms

    def on_epoch_end(self, epoch: int, logs: dict) -> None:
        registry = get_metrics()
        for key, value in logs.items():
            if isinstance(value, (int, float)):
                registry.histogram(f"{self.prefix}_{key}").observe(value)

    def on_train_end(self, logs: dict) -> None:
        registry = get_metrics()
        for key, value in logs.items():
            if isinstance(value, (int, float)):
                registry.gauge(f"{self.prefix}_final_{key}").set(value)


class LoggingHook(TrainingHook):
    """Logs training progress through the structured repro logger."""

    def __init__(self, name: str = "train", *, every: int = 1) -> None:
        if every < 1:
            raise ValidationError("every must be >= 1")
        self.name = name
        self.every = every
        self._logger = get_logger("repro.obs.hooks")

    def on_train_begin(self, model, n_epochs: int) -> None:
        self._logger.info(
            "%s: training %s for %d epochs",
            self.name, type(model).__name__, n_epochs,
        )

    def on_epoch_end(self, epoch: int, logs: dict) -> None:
        if epoch % self.every:
            return
        scalars = " ".join(
            f"{k}={v:.4g}" for k, v in logs.items() if isinstance(v, (int, float))
        )
        self._logger.debug("%s: epoch %d %s", self.name, epoch, scalars)

    def on_train_end(self, logs: dict) -> None:
        self._logger.info("%s: training finished (%s)", self.name, logs)


def default_hooks(prefix: str) -> TrainingHook:
    """The hook bundle the observability session wires into training loops."""
    return HookList([MetricsHook(prefix), LoggingHook(prefix, every=50)])
