"""Streaming drift observability for the serve path.

The paper's deployment policy (§VI-F) refreshes the FS+GAN adapter "when
the data distribution undergoes significant changes" — which presumes a
*continuously observable* drift signal, not a post-hoc log dump.
:class:`FeatureDriftTracker` provides it: a
:class:`~repro.obs.sketch.DistributionSketch` frozen on reference data
(the pipeline's scaled source sample) accumulates every live batch, and
once enough rows are in the window it publishes

* ``<name>.psi_max`` / ``<name>.psi_mean`` / ``<name>.ks_max`` gauges,
* per-feature ``<name>.psi{feature=j}`` gauges for offending features
  (bounded cardinality: only features above the alarm threshold),
* a ``<name>.drift_alarms_total`` counter, and
* rising-edge ``drift.alarm`` / falling-edge ``drift.clear`` events in
  the :class:`~repro.obs.export.EventLog`,

all through the process-global collectors, so the tracker is silent and
nearly free when observability is disabled (one sketch update per batch;
score computation is skipped entirely below ``min_rows``).
"""

from __future__ import annotations

import numpy as np

from repro.obs.export import get_event_log
from repro.obs.logging import get_logger
from repro.obs.metrics import get_metrics
from repro.obs.sketch import DistributionSketch
from repro.utils.errors import ValidationError

__all__ = ["FeatureDriftTracker"]

_logger = get_logger("repro.obs.drift")


class FeatureDriftTracker:
    """Scores live batches against a frozen reference distribution.

    Parameters
    ----------
    reference:
        2-D reference sample (rows, features) defining the baseline —
        for the serve path, the pipeline's scaled source data.
    psi_threshold:
        Per-feature PSI above which the feature counts as drifted; the
        alarm fires when any feature crosses it (0.25 = the conventional
        "major shift" reading).
    min_rows:
        Don't score until the live window holds at least this many rows
        (PSI on a handful of rows is noise).
    window_rows:
        Once the window exceeds this many rows it is exponentially
        decayed (halved), so old traffic fades and the scores track the
        *current* distribution.  None keeps an ever-growing window.
    name:
        Metric-name prefix (``serve`` → ``serve.psi_max`` …).
    """

    def __init__(
        self,
        reference,
        *,
        n_bins: int = 10,
        psi_threshold: float = 0.25,
        min_rows: int = 256,
        window_rows: int | None = 4096,
        name: str = "serve",
    ) -> None:
        if psi_threshold <= 0.0:
            raise ValidationError("psi_threshold must be > 0")
        if min_rows < 1:
            raise ValidationError("min_rows must be >= 1")
        if window_rows is not None and window_rows < min_rows:
            raise ValidationError("window_rows must be >= min_rows")
        self.sketch = DistributionSketch(reference, n_bins=n_bins)
        self.psi_threshold = float(psi_threshold)
        self.min_rows = int(min_rows)
        self.window_rows = None if window_rows is None else int(window_rows)
        self.name = str(name)
        self.alarmed = False
        self.batches = 0
        self.last_scores: dict | None = None

    @property
    def n_features(self) -> int:
        return self.sketch.n_features

    def update(self, X) -> dict | None:
        """Fold one batch in; score and publish once the window is warm.

        Returns the score dict (``psi`` / ``ks`` arrays, ``psi_max``,
        ``drifted_features``, ``alarmed``) or None while below
        ``min_rows``.
        """
        self.batches += 1
        rows = self.sketch.update(X)
        if rows < self.min_rows:
            return None
        scores = self.score()
        self._publish(scores)
        if self.window_rows is not None and self.sketch.rows >= self.window_rows:
            self.sketch.decay(0.5)
        return scores

    def score(self) -> dict:
        """Compute current PSI/KS scores without publishing anything."""
        psi = self.sketch.psi()
        ks = self.sketch.ks()
        drifted = np.flatnonzero(psi > self.psi_threshold)
        return {
            "psi": psi,
            "ks": ks,
            "psi_max": float(psi.max()) if psi.size else 0.0,
            "psi_mean": float(psi.mean()) if psi.size else 0.0,
            "ks_max": float(ks.max()) if ks.size else 0.0,
            "drifted_features": tuple(int(j) for j in drifted),
            "rows": self.sketch.rows,
            "alarmed": bool(drifted.size),
        }

    def _publish(self, scores: dict) -> None:
        self.last_scores = scores
        registry = get_metrics()
        if registry.enabled:
            prefix = self.name
            registry.gauge(f"{prefix}.psi_max").set(scores["psi_max"])
            registry.gauge(f"{prefix}.psi_mean").set(scores["psi_mean"])
            registry.gauge(f"{prefix}.ks_max").set(scores["ks_max"])
            registry.gauge(f"{prefix}.drift_window_rows").set(scores["rows"])
            for j in scores["drifted_features"]:
                registry.gauge(f"{prefix}.psi", feature=j).set(
                    float(scores["psi"][j])
                )
        now_alarmed = scores["alarmed"]
        if now_alarmed and not self.alarmed:
            if registry.enabled:
                registry.counter(f"{self.name}.drift_alarms_total").inc()
            get_event_log().emit(
                "drift.alarm",
                source=self.name,
                psi_max=scores["psi_max"],
                ks_max=scores["ks_max"],
                features=list(scores["drifted_features"]),
                rows=scores["rows"],
                batch=self.batches,
            )
            _logger.warning(
                "drift alarm: psi_max=%.3f on %d feature(s) after %d rows",
                scores["psi_max"], len(scores["drifted_features"]),
                scores["rows"],
            )
        elif self.alarmed and not now_alarmed:
            get_event_log().emit(
                "drift.clear",
                source=self.name,
                psi_max=scores["psi_max"],
                rows=scores["rows"],
                batch=self.batches,
            )
            _logger.info("drift cleared: psi_max=%.3f", scores["psi_max"])
        self.alarmed = now_alarmed
