"""Fixed-memory streaming sketches backing the live telemetry plane.

Two sketches, two jobs:

:class:`QuantileSketch`
    Streaming quantile estimation for latency/score histograms.  Exact
    below a small-n cutoff (raw values are kept and percentiles match
    ``np.percentile`` bit for bit), then degrades to a uniform reservoir
    sample (Vitter's algorithm R, deterministic seed) with exact
    count / sum / min / max carried alongside.  Memory is bounded by
    ``capacity`` floats no matter how many observations arrive; the
    expected rank error of a quantile estimate from a reservoir of size
    ``k`` is O(1/sqrt(k)) — about 2% at the default ``capacity=4096``
    (the documented tolerance; ``tests/test_obs_sketch.py`` enforces a
    conservative bound).

:class:`DistributionSketch`
    Per-feature binned distribution sketch for streaming drift scores.
    Bin edges are frozen from a reference sample at construction; live
    batches update per-feature bin counts with one vectorized
    ``bincount``; :meth:`psi` / :meth:`ks` score the live window against
    the reference without ever retaining rows.

Both sketches are deterministic: the reservoir RNG is seeded per sketch
and never touches numpy's global state or any model RNG stream.
"""

from __future__ import annotations

import random

import numpy as np

from repro.utils.errors import ValidationError

__all__ = ["DistributionSketch", "QuantileSketch"]

#: default raw-value cutoff below which percentiles are exact
EXACT_LIMIT = 4096
#: default reservoir capacity once the exact cutoff is passed
CAPACITY = 4096


class QuantileSketch:
    """Bounded-memory stream of observations with quantile estimates.

    Parameters
    ----------
    exact_limit:
        Keep raw values (exact percentiles) up to this many observations.
    capacity:
        Reservoir size once the stream outgrows ``exact_limit``.  The
        switchover downsamples the retained values in place, so memory
        never exceeds ``max(exact_limit, capacity)`` floats.
    seed:
        Seed for the reservoir's private RNG (deterministic replacement
        decisions; independent of all model RNG streams).
    """

    __slots__ = ("exact_limit", "capacity", "count", "total",
                 "minimum", "maximum", "_values", "_rng", "_seed")

    def __init__(
        self,
        *,
        exact_limit: int = EXACT_LIMIT,
        capacity: int = CAPACITY,
        seed: int = 0,
    ) -> None:
        if exact_limit < 1 or capacity < 1:
            raise ValidationError("exact_limit and capacity must be >= 1")
        self.exact_limit = int(exact_limit)
        self.capacity = int(capacity)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._values: list[float] = []
        # the reservoir RNG is constructed lazily, so the exact path
        # allocates nothing beyond the value list
        self._rng: random.Random | None = None
        self._seed = int(seed)

    @property
    def exact(self) -> bool:
        """True while percentiles are still computed from every value."""
        return self.count <= self.exact_limit

    @property
    def sample_size(self) -> int:
        """Number of retained values (== count on the exact path)."""
        return len(self._values)

    def add(self, value: float) -> None:
        """Fold one observation into the sketch."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if self.count <= self.exact_limit:
            self._values.append(value)
            return
        if self._rng is None:
            self._switch_to_reservoir()
        if len(self._values) < self.capacity:  # fill phase
            self._values.append(value)
            return
        # algorithm R: item i (1-based) replaces a random slot w.p. k/i
        j = self._rng.randrange(self.count)
        if j < self.capacity:
            self._values[j] = value

    def _switch_to_reservoir(self) -> None:
        self._rng = random.Random(self._seed)
        if len(self._values) > self.capacity:
            # downsample the exact buffer uniformly to the reservoir size
            self._values = self._rng.sample(self._values, self.capacity)
        # from here on the buffer length is frozen at <= capacity

    def percentile(self, q) -> float | np.ndarray:
        """The ``q``-th percentile (0–100); exact below the cutoff.

        Past the cutoff the estimate comes from the reservoir, except
        q=0 / q=100 which stay exact (tracked min/max).
        """
        q_arr = np.asarray(q, dtype=np.float64)
        if np.any(q_arr < 0.0) or np.any(q_arr > 100.0):
            raise ValidationError("percentile q must be in [0, 100]")
        if self.count == 0:
            return (float("nan") if q_arr.ndim == 0
                    else np.full(q_arr.shape, np.nan))
        # snapshot: a scraping thread may read while the owner appends
        values = list(self._values)
        result = np.percentile(values, q_arr)
        if not self.exact:
            result = np.where(q_arr <= 0.0, self.minimum, result)
            result = np.where(q_arr >= 100.0, self.maximum, result)
        return float(result) if q_arr.ndim == 0 else np.asarray(result)

    def summary(self) -> dict:
        """Count, sum, mean, exact min/max and the standard percentile trio."""
        if self.count == 0:
            return {"count": 0}
        p50, p90, p99 = np.atleast_1d(self.percentile((50, 90, 99)))
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count,
            "min": self.minimum,
            "max": self.maximum,
            "p50": float(p50),
            "p90": float(p90),
            "p99": float(p99),
        }

    def to_dict(self) -> dict:
        data = self.summary()
        if self.count and not self.exact:
            data["approx"] = True
            data["sample_size"] = self.sample_size
        return data


class DistributionSketch:
    """Binned per-feature distributions with streaming PSI / KS scores.

    Parameters
    ----------
    reference:
        2-D reference sample ``(n_ref, n_features)``.  Uniform bin edges
        per feature are frozen from its min/max (with ``margin`` slack on
        each side); its binned proportions become the drift baseline.
    n_bins:
        Interior bins per feature; out-of-range live values clip into the
        edge bins, so mass escaping the reference range is still counted.
    margin:
        Fractional widening of the reference range on each side.
    """

    __slots__ = ("n_bins", "n_features", "_lo", "_inv_width", "_ref_probs",
                 "_counts", "_rows", "_offsets")

    _EPS = 1e-6

    def __init__(self, reference, *, n_bins: int = 16, margin: float = 0.05):
        reference = np.asarray(reference, dtype=np.float64)
        if reference.ndim != 2 or reference.shape[0] < 2:
            raise ValidationError(
                "DistributionSketch needs a 2-D reference with >= 2 rows"
            )
        if n_bins < 2:
            raise ValidationError("n_bins must be >= 2")
        self.n_bins = int(n_bins)
        self.n_features = int(reference.shape[1])
        lo = reference.min(axis=0)
        hi = reference.max(axis=0)
        span = hi - lo
        span[span == 0.0] = 1.0  # constant feature: single occupied bin
        lo = lo - margin * span
        width = span * (1.0 + 2.0 * margin) / self.n_bins
        self._lo = lo
        self._inv_width = 1.0 / width
        self._offsets = (np.arange(self.n_features) * self.n_bins)
        ref_counts = np.zeros(self.n_features * self.n_bins, dtype=np.int64)
        self._bincount_into(reference, ref_counts)
        probs = ref_counts.reshape(self.n_features, self.n_bins).astype(np.float64)
        probs = (probs + self._EPS) / (probs.sum(axis=1, keepdims=True)
                                       + self.n_bins * self._EPS)
        self._ref_probs = probs
        self._counts = np.zeros(self.n_features * self.n_bins, dtype=np.int64)
        self._rows = 0

    def _bincount_into(self, X: np.ndarray, counts: np.ndarray) -> None:
        idx = (X - self._lo) * self._inv_width
        np.floor(idx, out=idx)
        np.clip(idx, 0, self.n_bins - 1, out=idx)
        flat = idx.astype(np.int64) + self._offsets
        counts += np.bincount(flat.ravel(), minlength=counts.size)

    @property
    def rows(self) -> int:
        """Rows folded into the live window since the last decay to zero."""
        return self._rows

    def update(self, X) -> int:
        """Fold a live batch into the window; returns total window rows."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ValidationError(
                f"expected a 2-D batch with {self.n_features} features"
            )
        self._bincount_into(X, self._counts)
        self._rows += int(X.shape[0])
        return self._rows

    def decay(self, factor: float = 0.5) -> None:
        """Exponentially forget the window (sliding-window behaviour)."""
        if not 0.0 <= factor < 1.0:
            raise ValidationError("decay factor must be in [0, 1)")
        self._counts = (self._counts * factor).astype(np.int64)
        self._rows = int(self._counts.sum() // max(self.n_features, 1))

    def _live_probs(self) -> np.ndarray:
        live = self._counts.reshape(self.n_features, self.n_bins)
        totals = live.sum(axis=1, keepdims=True).astype(np.float64)
        totals[totals == 0.0] = 1.0
        return (live + self._EPS) / (totals + self.n_bins * self._EPS)

    def psi(self) -> np.ndarray:
        """Population-stability index per feature (0 = unchanged).

        Conventional reading: < 0.1 stable, 0.1–0.25 moderate shift,
        > 0.25 major shift (the default alarm threshold downstream).
        """
        q = self._live_probs()
        p = self._ref_probs
        return np.sum((q - p) * np.log(q / p), axis=1)

    def ks(self) -> np.ndarray:
        """Binned Kolmogorov–Smirnov distance per feature (max CDF gap)."""
        q = self._live_probs()
        p = self._ref_probs
        return np.max(np.abs(np.cumsum(q, axis=1) - np.cumsum(p, axis=1)),
                      axis=1)

    def to_dict(self) -> dict:
        psi = self.psi()
        return {
            "rows": self._rows,
            "n_features": self.n_features,
            "n_bins": self.n_bins,
            "psi_max": float(psi.max()) if psi.size else 0.0,
            "psi_mean": float(psi.mean()) if psi.size else 0.0,
        }
