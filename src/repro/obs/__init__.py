"""repro.obs — tracing, metrics, training telemetry and structured logging.

The observability layer of the reproduction (see DESIGN.md and the README's
*Observability* section).  Everything defaults to shared no-op singletons,
so the library is silent and byte-identical in behaviour until a consumer
installs real collectors — most conveniently through :class:`RunRecorder`
(the CLI's ``--trace`` flag does exactly that)::

    from repro.obs import RunRecorder

    with RunRecorder("runs/my-run", manifest={"seed": 0}) as rec:
        pipeline.fit(...)          # spans, metrics and events collected
    # runs/my-run/{trace,metrics,manifest}.json + events.jsonl written
"""

from repro.obs.drift import FeatureDriftTracker
from repro.obs.export import (
    NULL_EVENT_LOG,
    EventLog,
    NullEventLog,
    RunRecorder,
    get_event_log,
    run_dir_name,
    set_event_log,
)
from repro.obs.exporters import (
    PrometheusExporter,
    SnapshotWriter,
    render_prometheus,
)
from repro.obs.hooks import (
    NULL_HOOK,
    HistoryHook,
    HookList,
    LoggingHook,
    MetricsHook,
    TrainingHook,
    as_hook,
    default_hooks,
)
from repro.obs.logging import (
    configure_logging,
    get_logger,
    verbosity_to_level,
)
from repro.obs.inspect import diff_runs, load_run, summarize_run, tail_events
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_metrics,
    set_metrics,
)
from repro.obs.sketch import DistributionSketch, QuantileSketch
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Stopwatch,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "DistributionSketch",
    "EventLog",
    "FeatureDriftTracker",
    "Gauge",
    "Histogram",
    "HistoryHook",
    "HookList",
    "LoggingHook",
    "MetricsHook",
    "MetricsRegistry",
    "NULL_EVENT_LOG",
    "NULL_HOOK",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullEventLog",
    "NullRegistry",
    "NullTracer",
    "PrometheusExporter",
    "QuantileSketch",
    "RunRecorder",
    "SnapshotWriter",
    "Span",
    "Stopwatch",
    "Tracer",
    "TrainingHook",
    "as_hook",
    "configure_logging",
    "default_hooks",
    "diff_runs",
    "get_event_log",
    "get_logger",
    "get_metrics",
    "get_tracer",
    "load_run",
    "render_prometheus",
    "run_dir_name",
    "set_event_log",
    "set_metrics",
    "set_tracer",
    "summarize_run",
    "tail_events",
    "use_tracer",
    "verbosity_to_level",
]
