"""Structured stdlib logging for repro.

All repro modules log through children of the ``repro`` logger obtained via
:func:`get_logger`.  Nothing is emitted until the logger is configured —
either explicitly with :func:`configure_logging` (the CLI's ``--log-level``
/ ``-v`` flags call it) or implicitly from the ``REPRO_LOG_LEVEL``
environment variable on first use.  The default level is WARNING, so
library consumers see nothing unless they opt in.
"""

from __future__ import annotations

import logging
import os
import sys

from repro.utils.errors import ValidationError

ROOT_LOGGER_NAME = "repro"
ENV_LOG_LEVEL = "REPRO_LOG_LEVEL"
_LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s :: %(message)s"
_configured = False


def _coerce_level(level) -> int:
    if isinstance(level, int):
        return level
    name = str(level).strip().upper()
    value = logging.getLevelName(name)
    if not isinstance(value, int):
        raise ValidationError(
            f"unknown log level {level!r}; use DEBUG/INFO/WARNING/ERROR"
        )
    return value


def configure_logging(level=None, *, stream=None, force: bool = False) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger and set its level.

    ``level`` defaults to ``$REPRO_LOG_LEVEL`` or WARNING.  Re-configuring is
    a level change only unless ``force`` replaces the handler (used by tests
    to redirect the stream).
    """
    global _configured
    root = logging.getLogger(ROOT_LOGGER_NAME)
    resolved = _coerce_level(
        level if level is not None else os.environ.get(ENV_LOG_LEVEL, "WARNING")
    )
    if force:
        for handler in list(root.handlers):
            root.removeHandler(handler)
        _configured = False
    if not _configured:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(logging.Formatter(_LOG_FORMAT))
        root.addHandler(handler)
        root.propagate = False
        _configured = True
    root.setLevel(resolved)
    return root


def get_logger(name: str | None = None) -> logging.Logger:
    """A child of the ``repro`` logger, lazily configured from the env."""
    if not _configured:
        configure_logging()
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def verbosity_to_level(verbose: int) -> int:
    """Map ``-v`` counts to levels: 0 → WARNING, 1 → INFO, 2+ → DEBUG."""
    if verbose <= 0:
        return logging.WARNING
    if verbose == 1:
        return logging.INFO
    return logging.DEBUG
