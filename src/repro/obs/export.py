"""JSONL event log, run manifests and the observability session.

:class:`EventLog` accumulates structured events (drift observations,
per-feature FS decisions, runner cell progress, …) that export as JSONL.
:class:`RunRecorder` bundles a fresh tracer + metrics registry + event log,
installs them as the process-global instances for the duration of a ``with``
block, and on exit writes the run's artifacts::

    runs/<run-name>/trace.json      # hierarchical span tree
    runs/<run-name>/metrics.json    # counters / gauges / histogram summaries
    runs/<run-name>/events.jsonl    # one JSON object per line
    runs/<run-name>/manifest.json   # run parameters (seed-keyed, timestamp-free)

Run directories are deliberately timestamp-free and seed-keyed
(:func:`run_dir_name`) so re-running the same configuration overwrites the
same artifacts — diffs between runs are then meaningful.
"""

from __future__ import annotations

import json
import os

from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.obs.trace import Tracer, _jsonable, set_tracer
from repro.utils.errors import ValidationError


class EventLog:
    """Append-only structured event collector with live subscriptions.

    ``subscribe`` registers a callback for matching event kinds; callbacks
    fire on every ``emit`` — including on :class:`NullEventLog`, which
    discards the record but still notifies.  That lets reactive components
    (the adaptation controller watching ``drift.alarm``) work whether or
    not an observability session is recording.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._subscribers: list[tuple[object, frozenset | None]] = []

    def subscribe(self, callback, kinds=None) -> None:
        """Call ``callback(kind, fields)`` on every emit of a matching kind.

        ``kinds`` is an iterable of event kinds to match (None = all).
        Subscriber exceptions propagate to the emitter — reactive hooks
        should catch their own errors.
        """
        matched = frozenset(kinds) if kinds is not None else None
        self._subscribers.append((callback, matched))

    def unsubscribe(self, callback) -> None:
        """Remove every subscription of ``callback`` (missing is a no-op)."""
        self._subscribers = [
            (cb, kinds) for cb, kinds in self._subscribers if cb is not callback
        ]

    def _notify(self, kind: str, fields: dict) -> None:
        for callback, kinds in list(self._subscribers):
            if kinds is None or kind in kinds:
                callback(kind, fields)

    def emit(self, kind: str, **fields) -> None:
        """Record one event; ``kind`` names the event type."""
        self.events.append({"kind": kind, **_jsonable(fields)})
        if self._subscribers:
            self._notify(kind, fields)

    def __len__(self) -> int:
        return len(self.events)

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(event) for event in self.events)


class NullEventLog(EventLog):
    """No-op event log: ``emit`` discards the record (but still notifies)."""

    enabled = False

    def emit(self, kind: str, **fields) -> None:
        if self._subscribers:
            self._notify(kind, fields)


NULL_EVENT_LOG = NullEventLog()
_event_log: EventLog = NULL_EVENT_LOG


def get_event_log() -> EventLog:
    """The process-global event log (no-op unless a session installed one)."""
    return _event_log


def set_event_log(log: EventLog | None) -> EventLog:
    """Install ``log`` globally (None resets to the no-op); returns the old one."""
    global _event_log
    if log is not None and not isinstance(log, EventLog):
        raise ValidationError("set_event_log expects an EventLog or None")
    previous = _event_log
    _event_log = log if log is not None else NULL_EVENT_LOG
    return previous


def run_dir_name(command: str, **key_parts) -> str:
    """Deterministic run-directory name: ``<command>[-k=v...]``, timestamp-free."""
    parts = [command]
    for key in sorted(key_parts):
        value = key_parts[key]
        if value is None:
            continue
        parts.append(f"{key}={value}")
    return "-".join(parts)


class RunRecorder:
    """One observability session: collects, then persists, a run's telemetry.

    Parameters
    ----------
    run_dir:
        Directory receiving ``trace.json`` / ``metrics.json`` /
        ``events.jsonl`` / ``manifest.json``.  None collects without writing
        the bundle (useful with ``metrics_path`` alone).
    metrics_path:
        Optional extra/standalone destination for ``metrics.json``.
    manifest:
        Run parameters recorded verbatim in ``manifest.json``.
    """

    def __init__(
        self,
        run_dir: str | os.PathLike | None = None,
        *,
        metrics_path: str | os.PathLike | None = None,
        manifest: dict | None = None,
    ) -> None:
        if run_dir is None and metrics_path is None:
            raise ValidationError("RunRecorder needs a run_dir or a metrics_path")
        self.run_dir = os.fspath(run_dir) if run_dir is not None else None
        self.metrics_path = os.fspath(metrics_path) if metrics_path is not None else None
        self.manifest = dict(manifest or {})
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.events = EventLog()
        self._previous: tuple | None = None

    def __enter__(self) -> "RunRecorder":
        self._previous = (
            set_tracer(self.tracer),
            set_metrics(self.metrics),
            set_event_log(self.events),
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        prev_tracer, prev_metrics, prev_events = self._previous
        set_tracer(prev_tracer)
        set_metrics(prev_metrics)
        set_event_log(prev_events)
        self._previous = None
        if exc_type is None:
            self.write()

    def write(self) -> list[str]:
        """Persist all artifacts; returns the paths written."""
        written: list[str] = []
        if self.run_dir is not None:
            os.makedirs(self.run_dir, exist_ok=True)
            written.append(self._dump(
                os.path.join(self.run_dir, "trace.json"), self.tracer.to_json()
            ))
            written.append(self._dump(
                os.path.join(self.run_dir, "metrics.json"), self.metrics.to_json()
            ))
            written.append(self._dump(
                os.path.join(self.run_dir, "events.jsonl"),
                self.events.to_jsonl() + ("\n" if self.events.events else ""),
            ))
            written.append(self._dump(
                os.path.join(self.run_dir, "manifest.json"),
                json.dumps(_jsonable(self.manifest), indent=2),
            ))
        if self.metrics_path is not None:
            parent = os.path.dirname(self.metrics_path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            written.append(self._dump(self.metrics_path, self.metrics.to_json()))
        return written

    @staticmethod
    def _dump(path: str, text: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return path
