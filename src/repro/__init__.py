"""repro — reproduction of "Few-Shot Domain Adaptation for Effective Data
Drift Mitigation in Network Management" (Johari et al., ICDCS 2025).

Public surface
--------------
- :mod:`repro.core` — the paper's method: :class:`~repro.core.FSModel`
  (causal feature separation) and :class:`~repro.core.FSGANPipeline`
  (feature separation + GAN reconstruction), both model-agnostic.
- :mod:`repro.datasets` — synthetic 5GC / 5GIPC drift benchmarks built on a
  structural-causal-model engine with soft interventions.
- :mod:`repro.baselines` — the thirteen compared approaches of Table I.
- :mod:`repro.ml`, :mod:`repro.nn`, :mod:`repro.causal`, :mod:`repro.gan` —
  the from-scratch substrates everything is built on.
- :mod:`repro.experiments` — the harness regenerating every table/figure.

Quickstart
----------
>>> from repro.datasets import make_5gc, FiveGCConfig
>>> from repro.core import FSGANPipeline
>>> from repro.ml import TNetClassifier, macro_f1
>>> bench = make_5gc(FiveGCConfig().scaled(0.2), random_state=0)
>>> X_few, y_few, X_test, y_test = bench.few_shot_split(5, random_state=0)
>>> pipe = FSGANPipeline(lambda: TNetClassifier(epochs=30, random_state=0))
>>> pipe.fit(bench.X_source, bench.y_source, X_few)      # doctest: +SKIP
>>> macro_f1(y_test, pipe.predict(X_test))               # doctest: +SKIP
"""

from repro.core import (
    FSConfig,
    FSGANPipeline,
    FSModel,
    FeatureSeparator,
    ReconstructionConfig,
    VariantReconstructor,
)

__version__ = "1.0.0"

__all__ = [
    "FSConfig",
    "FSGANPipeline",
    "FSModel",
    "FeatureSeparator",
    "ReconstructionConfig",
    "VariantReconstructor",
    "__version__",
]
