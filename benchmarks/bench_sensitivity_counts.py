"""§VI-C sensitivity: FS-identified variant-feature counts vs shot budget.

Regenerates the paper's 35/68/75 (5GC) and 23/31/37 (5GIPC) progression: the
number of domain-variant features FS identifies grows with the target sample
budget.  On our SCM substrate the bench additionally reports recall/precision
against the generator's ground-truth intervention targets — a validation the
original datasets cannot provide.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_shape
from repro.experiments import format_variant_counts, variant_counts


@pytest.mark.parametrize("dataset", ["5gc", "5gipc"])
def test_variant_count_progression(benchmark, preset, dataset):
    result = benchmark.pedantic(
        lambda: variant_counts(dataset, preset=preset), rounds=1, iterations=1
    )
    print()
    print(format_variant_counts(result))

    strict = preset.name != "smoke"
    counts = [row["n_variant_mean"] for row in result["rows"]]
    assert_shape(
        counts[-1] >= counts[0],
        "variant count must grow (or hold) with more shots",
        strict=strict,
    )
    final = result["rows"][-1]
    assert_shape(
        final["recall"] > 0.6,
        "FS must recover most ground-truth targets at the largest budget",
        strict=strict,
    )
    assert_shape(
        final["precision"] > 0.6,
        "FS must not over-flag wildly at the largest budget",
        strict=strict,
    )
