"""Benchmark fixtures.

The preset is selected with the ``REPRO_PRESET`` environment variable
(``smoke`` by default — minutes-scale; ``fast`` reproduces the numbers
recorded in EXPERIMENTS.md; ``paper`` runs the published sizes).
"""

from __future__ import annotations

import pytest

from repro.experiments import get_preset


@pytest.fixture(scope="session")
def preset():
    return get_preset()


def assert_shape(condition: bool, message: str, *, strict: bool) -> None:
    """Assert a paper-shape property, downgrading to a warning at smoke scale.

    Smoke-preset runs are for exercising the harness, not for statistical
    conclusions; shape checks are only enforced for the fast/paper presets.
    """
    import warnings

    if condition:
        return
    if strict:
        raise AssertionError(message)
    warnings.warn(f"shape check failed at smoke scale: {message}", stacklevel=2)
