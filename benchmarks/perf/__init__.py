"""Performance benchmarks for the vectorized CI-test engine (§VI-D)."""
