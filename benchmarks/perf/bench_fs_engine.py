"""FS discovery perf: batched CI engine vs the frozen reference loop.

Wraps :func:`repro.experiments.run_bench` (the ``repro bench`` subcommand)
in pytest-benchmark so the before/after numbers land in the benchmark
report, and checks the record contract: the engine must agree with the
reference loop exactly and beat it on wall clock.  The headline ≥3x target
is a paper-shape property (§VI-D's CI-test-dominated FS cost), enforced via
:func:`assert_shape` so a noisy smoke-scale CI box warns instead of failing.
"""

from __future__ import annotations

from benchmarks.conftest import assert_shape
from repro.experiments import run_bench
from repro.experiments.bench import BENCH_SCHEMA, bench_key, write_bench_record


def test_fs_engine_speedup(benchmark, preset, tmp_path):
    out = tmp_path / "BENCH_fs.json"

    record = benchmark.pedantic(
        lambda: run_bench(
            "5gc", preset=preset, include_gan=False, out=str(out)
        ),
        rounds=1,
        iterations=1,
    )

    # record contract: well-formed and seed-keyed on disk
    assert out.exists()
    assert bench_key(record) == f"5gc/{preset.name}/seed0"
    for field in ("before", "after", "speedup", "equivalent", "n_features"):
        assert field in record
    assert record["before"]["n_ci_tests"] > 0

    # behaviour: the engine is an optimization, not an approximation
    assert record["equivalent"], "engine results diverged from the reference loop"
    assert record["after"]["n_ci_tests"] == record["before"]["n_ci_tests"]

    # speed: strictly faster always; ≥3x is the paper-shape target
    assert record["speedup"] > 1.0
    assert_shape(
        record["speedup"] >= 3.0,
        f"FS engine speedup {record['speedup']:.2f}x below the 3x target",
        strict=False,  # wall-clock ratios are noisy on shared CI runners
    )
    print(
        f"\nFS engine: {record['before']['fs_seconds']:.2f}s -> "
        f"{record['after']['fs_seconds']:.2f}s "
        f"({record['speedup']:.2f}x, {record['before']['n_ci_tests']} CI tests)"
    )


def test_bench_record_merge(tmp_path):
    """Repeated runs accumulate by (dataset, preset, seed) key."""
    out = tmp_path / "BENCH_fs.json"
    base = {
        "dataset": "5gc", "preset": "smoke", "seed": 0,
        "before": {"fs_seconds": 2.0}, "after": {"fs_seconds": 1.0},
        "speedup": 2.0, "equivalent": True,
    }
    write_bench_record(base, str(out))
    write_bench_record({**base, "seed": 1}, str(out))
    write_bench_record({**base, "speedup": 3.0}, str(out))  # overwrite slot

    import json

    doc = json.loads(out.read_text())
    assert doc["schema"] == BENCH_SCHEMA
    assert set(doc["records"]) == {"5gc/smoke/seed0", "5gc/smoke/seed1"}
    assert doc["records"]["5gc/smoke/seed0"]["speedup"] == 3.0
