"""NN training-engine perf: fused cGAN kernel vs the frozen reference.

Wraps :func:`repro.experiments.run_bench_nn` (``repro bench --suite nn``)
in pytest-benchmark so the before/after numbers land in the benchmark
report, and checks the record contract: float64 training must be
bit-identical to the frozen reference and faster; serving must match the
per-draw loop within last-ULP BLAS roundoff; the float32 fast path must
pass its serving tolerance check.  The headline ≥2x training target is
enforced via :func:`assert_shape` so a noisy smoke-scale CI box warns
instead of failing (elementwise-dominated minibatches at smoke sizes are
memory-bandwidth-bound; see README's Performance section).
"""

from __future__ import annotations

from benchmarks.conftest import assert_shape
from repro.experiments import run_bench_nn
from repro.experiments.bench import bench_key
from repro.experiments.bench_nn import BENCH_NN_SCHEMA

#: epoch budget for the perf check — enough iterations to dominate setup
BENCH_EPOCHS = 40


def test_nn_engine_speedup(benchmark, preset, tmp_path):
    out = tmp_path / "BENCH_nn.json"

    record = benchmark.pedantic(
        lambda: run_bench_nn(
            "5gc", preset=preset, epochs=BENCH_EPOCHS, out=str(out)
        ),
        rounds=1,
        iterations=1,
    )

    # record contract: well-formed and seed-keyed on disk
    assert out.exists()
    assert bench_key(record) == f"5gc/{preset.name}/seed0"
    for field in ("before", "after", "speedup", "equivalent", "serve",
                  "float32"):
        assert field in record

    # behaviour: the fused kernel is an optimization, not an approximation
    assert record["equivalent"], (
        "fused float64 training diverged from the frozen reference"
    )
    assert record["serve"]["equivalent"], (
        f"batched serving drifted beyond BLAS roundoff "
        f"(max|diff|={record['serve']['max_abs_diff']:.2e})"
    )
    assert record["float32"]["within_tolerance"], (
        f"float32 serving out of tolerance "
        f"(max|diff|={record['float32']['serve_max_abs_diff']:.2e})"
    )

    # speed: strictly faster always; ≥2x is the issue's headline target
    assert record["speedup"] > 1.0
    assert_shape(
        record["speedup"] >= 2.0,
        f"NN engine speedup {record['speedup']:.2f}x below the 2x target",
        strict=False,  # wall-clock ratios are noisy on shared CI runners
    )
    print(
        f"\nNN engine: {record['before']['train_seconds']:.2f}s -> "
        f"{record['after']['train_seconds']:.2f}s "
        f"({record['speedup']:.2f}x train, "
        f"{record['serve']['speedup']:.2f}x serve, "
        f"float32 {record['float32']['speedup_vs_float64']:.2f}x vs fused)"
    )


def test_nn_bench_record_schema(tmp_path):
    """The nn suite writes its own schema; files never mix suites."""
    import json

    from repro.experiments.bench import write_bench_record

    out = tmp_path / "BENCH_nn.json"
    base = {
        "dataset": "5gc", "preset": "smoke", "seed": 0,
        "before": {"train_seconds": 2.0}, "after": {"train_seconds": 1.0},
        "speedup": 2.0, "equivalent": True,
    }
    write_bench_record(base, str(out), schema=BENCH_NN_SCHEMA)
    write_bench_record({**base, "seed": 1}, str(out), schema=BENCH_NN_SCHEMA)

    doc = json.loads(out.read_text())
    assert doc["schema"] == BENCH_NN_SCHEMA
    assert set(doc["records"]) == {"5gc/smoke/seed0", "5gc/smoke/seed1"}
