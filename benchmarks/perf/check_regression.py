"""Bench-regression smoke gate: fresh speedups vs the committed baseline.

CI runs each benchmark suite into a *fresh* record file, then invokes

    python benchmarks/perf/check_regression.py \
        --baseline BENCH_serve.json --fresh fresh/BENCH_serve.json

Only *speedup ratios* are compared — wall-clock seconds depend on the
runner, but before/after are timed on the same machine in the same
process, so their ratio is machine-independent.  The gate fails (exit 1)
when a fresh ratio drops more than ``--tolerance`` (default 25%) below
the committed baseline's, i.e. the optimized path lost a chunk of its
advantage over the reference path.

Records present on only one side are reported but never fail the gate
(new benchmarks land before their baseline is committed).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

try:  # the gated ratio list lives in the suite registry
    from repro.experiments.bench_registry import REGRESSION_RATIO_FIELDS
except ImportError:  # CI invokes this script without PYTHONPATH=src
    sys.path.insert(
        0,
        os.path.join(
            os.path.dirname(os.path.abspath(__file__)), os.pardir, os.pardir, "src"
        ),
    )
    from repro.experiments.bench_registry import REGRESSION_RATIO_FIELDS

#: (label, path into the record) for every ratio worth gating
RATIO_FIELDS = REGRESSION_RATIO_FIELDS


def _dig(record: dict, path: tuple) -> float | None:
    node = record
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def _ratios(record: dict) -> dict[str, float]:
    """Gateable ratios of one record; malformed records yield no ratios.

    A record that is not a dict (hand-edited file, schema drift) or whose
    ratio is non-numeric simply contributes nothing — the caller reports a
    skip instead of crashing the gate.
    """
    if not isinstance(record, dict):
        return {}
    out = {}
    for label, path in RATIO_FIELDS:
        value = _dig(record, path)
        if value is not None:
            out[label] = value
    return out


def compare(baseline: dict, fresh: dict, *, tolerance: float) -> list[str]:
    """Return a list of failure messages (empty == gate passes)."""
    failures: list[str] = []
    base_records = baseline.get("records", {})
    fresh_records = fresh.get("records", {})
    shared = sorted(set(base_records) & set(fresh_records))
    for key in sorted(set(base_records) ^ set(fresh_records)):
        side = "baseline" if key in base_records else "fresh"
        print(f"  [skip] {key}: only in {side}")
    if not shared:
        print("  no shared records; nothing to gate")
        return failures
    for key in shared:
        base_ratios = _ratios(base_records[key])
        fresh_ratios = _ratios(fresh_records[key])
        if not base_ratios:
            print(f"  [skip] {key}: no gateable ratios in baseline record")
            continue
        for label in sorted(base_ratios):
            if label not in fresh_ratios:
                print(f"  [skip] {key} {label}: missing in fresh record")
                continue
            base, got = base_ratios[label], fresh_ratios[label]
            if not math.isfinite(base) or base <= 0.0:
                # a zero/inf baseline ratio means a zero `before` timing was
                # recorded; there is no meaningful floor to enforce
                print(f"  [skip] {key} {label}: "
                      f"baseline ratio {base!r} is not gateable")
                continue
            if not math.isfinite(got):
                print(f"  [skip] {key} {label}: fresh ratio {got!r} is not finite")
                continue
            floor = base * (1.0 - tolerance)
            verdict = "ok" if got >= floor else "REGRESSION"
            print(f"  [{verdict}] {key} {label}: "
                  f"{base:.2f}x -> {got:.2f}x (floor {floor:.2f}x)")
            if got < floor:
                failures.append(
                    f"{key} {label}: {got:.2f}x is more than "
                    f"{100 * tolerance:.0f}% below the committed {base:.2f}x"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json")
    parser.add_argument("--fresh", required=True,
                        help="record file produced by this CI run")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop in speedup (0.25 = 25%%)")
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance < 1.0:
        parser.error("tolerance must be in (0, 1)")

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(args.fresh, encoding="utf-8") as fh:
        fresh = json.load(fh)
    if baseline.get("schema") != fresh.get("schema"):
        print(f"schema mismatch: baseline {baseline.get('schema')!r} "
              f"vs fresh {fresh.get('schema')!r}", file=sys.stderr)
        return 1

    print(f"gate: {args.fresh} vs {args.baseline} "
          f"(tolerance {100 * args.tolerance:.0f}%)")
    failures = compare(baseline, fresh, tolerance=args.tolerance)
    for failure in failures:
        print(f"regression: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
