"""Bench-regression smoke gate: fresh speedups vs the committed baseline.

CI runs each benchmark suite into a *fresh* record file, then invokes

    python benchmarks/perf/check_regression.py \
        --baseline BENCH_serve.json --fresh fresh/BENCH_serve.json \
        --baseline BENCH_adapt.json --fresh fresh/BENCH_adapt.json

``--baseline``/``--fresh`` repeat and pair up positionally, so one
invocation gates every suite of a CI run and the job reports **all**
regressed keys across all suites in a single aggregated failure message
instead of dying at the first bad pair.

Only *speedup ratios* are compared — wall-clock seconds depend on the
runner, but before/after are timed on the same machine in the same
process, so their ratio is machine-independent.  The gate fails (exit 1)
when a fresh ratio drops more than ``--tolerance`` (default 25%) below
the committed baseline's, i.e. the optimized path lost a chunk of its
advantage over the reference path.

Records present on only one side are reported but never fail the gate,
and a *missing baseline file* is a skip-with-notice, not a failure (new
benchmarks land before their baseline is committed).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

try:  # the gated ratio list lives in the suite registry
    from repro.experiments.bench_registry import REGRESSION_RATIO_FIELDS
except ImportError:  # CI invokes this script without PYTHONPATH=src
    sys.path.insert(
        0,
        os.path.join(
            os.path.dirname(os.path.abspath(__file__)), os.pardir, os.pardir, "src"
        ),
    )
    from repro.experiments.bench_registry import REGRESSION_RATIO_FIELDS

#: (label, path into the record) for every ratio worth gating
RATIO_FIELDS = REGRESSION_RATIO_FIELDS


def _dig(record: dict, path: tuple) -> float | None:
    node = record
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def _ratios(record: dict) -> dict[str, float]:
    """Gateable ratios of one record; malformed records yield no ratios.

    A record that is not a dict (hand-edited file, schema drift) or whose
    ratio is non-numeric simply contributes nothing — the caller reports a
    skip instead of crashing the gate.
    """
    if not isinstance(record, dict):
        return {}
    out = {}
    for label, path in RATIO_FIELDS:
        value = _dig(record, path)
        if value is not None:
            out[label] = value
    return out


def compare(baseline: dict, fresh: dict, *, tolerance: float) -> list[str]:
    """Return a list of failure messages (empty == gate passes)."""
    failures: list[str] = []
    base_records = baseline.get("records", {})
    fresh_records = fresh.get("records", {})
    shared = sorted(set(base_records) & set(fresh_records))
    for key in sorted(set(base_records) ^ set(fresh_records)):
        side = "baseline" if key in base_records else "fresh"
        print(f"  [skip] {key}: only in {side}")
    if not shared:
        print("  no shared records; nothing to gate")
        return failures
    for key in shared:
        base_ratios = _ratios(base_records[key])
        fresh_ratios = _ratios(fresh_records[key])
        if not base_ratios:
            print(f"  [skip] {key}: no gateable ratios in baseline record")
            continue
        for label in sorted(base_ratios):
            if label not in fresh_ratios:
                print(f"  [skip] {key} {label}: missing in fresh record")
                continue
            base, got = base_ratios[label], fresh_ratios[label]
            if not math.isfinite(base) or base <= 0.0:
                # a zero/inf baseline ratio means a zero `before` timing was
                # recorded; there is no meaningful floor to enforce
                print(f"  [skip] {key} {label}: "
                      f"baseline ratio {base!r} is not gateable")
                continue
            if not math.isfinite(got):
                print(f"  [skip] {key} {label}: fresh ratio {got!r} is not finite")
                continue
            floor = base * (1.0 - tolerance)
            verdict = "ok" if got >= floor else "REGRESSION"
            print(f"  [{verdict}] {key} {label}: "
                  f"{base:.2f}x -> {got:.2f}x (floor {floor:.2f}x)")
            if got < floor:
                failures.append(
                    f"{key} {label}: {got:.2f}x is more than "
                    f"{100 * tolerance:.0f}% below the committed {base:.2f}x"
                )
    return failures


def gate_pair(baseline_path: str, fresh_path: str, *,
              tolerance: float) -> list[str]:
    """Gate one (baseline, fresh) file pair; returns its failure messages.

    A missing baseline file is a skip-with-notice (new suites land their
    record before the baseline is committed); every other problem — a
    missing fresh file, unreadable JSON, a schema mismatch — fails the
    pair, because it means the CI run did not produce what it promised.
    """
    if not os.path.exists(baseline_path):
        print(f"  [skip] no baseline at {baseline_path}; nothing to gate "
              f"(commit the fresh record to arm this gate)")
        return []
    try:
        with open(baseline_path, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"{baseline_path}: unreadable baseline ({exc})"]
    try:
        with open(fresh_path, encoding="utf-8") as fh:
            fresh = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"{fresh_path}: unreadable fresh record ({exc})"]
    if baseline.get("schema") != fresh.get("schema"):
        return [
            f"{fresh_path}: schema mismatch (baseline "
            f"{baseline.get('schema')!r} vs fresh {fresh.get('schema')!r})"
        ]
    prefix = os.path.basename(baseline_path)
    return [f"{prefix} {failure}"
            for failure in compare(baseline, fresh, tolerance=tolerance)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, action="append",
                        help="committed BENCH_*.json (repeatable; pairs "
                        "with --fresh by position)")
    parser.add_argument("--fresh", required=True, action="append",
                        help="record file produced by this CI run "
                        "(repeatable)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop in speedup (0.25 = 25%%)")
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance < 1.0:
        parser.error("tolerance must be in (0, 1)")
    if len(args.baseline) != len(args.fresh):
        parser.error(
            f"--baseline/--fresh counts differ "
            f"({len(args.baseline)} vs {len(args.fresh)}); they pair up "
            f"positionally"
        )

    failures: list[str] = []
    for baseline_path, fresh_path in zip(args.baseline, args.fresh):
        print(f"gate: {fresh_path} vs {baseline_path} "
              f"(tolerance {100 * args.tolerance:.0f}%)")
        failures.extend(
            gate_pair(baseline_path, fresh_path, tolerance=args.tolerance)
        )
    if failures:
        # one aggregated message so a multi-suite run surfaces every
        # regressed key at once instead of one per re-run
        print(
            f"\nregression gate FAILED: {len(failures)} regressed "
            f"ratio(s) across {len(args.baseline)} suite pair(s):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
