"""Table II: reconstruction-strategy ablation (FS+GAN / NoCond / VAE / AE).

Regenerates the paper's ablation with the TNet classifier on both datasets.
Shape target (fast/paper): the conditional GAN leads the deterministic
autoencoder (the paper's ordering GAN > NoCond > VAE ≥ VanillaAE, of which
the endpoints are the statistically robust pair).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import assert_shape
from repro.experiments import format_ablation, run_ablation


def _mean(results, method):
    return float(np.mean([c.f1_mean for c in results if c.method == method]))


@pytest.mark.parametrize("dataset", ["5gc", "5gipc"])
def test_table2_ablation(benchmark, preset, dataset):
    results = benchmark.pedantic(
        lambda: run_ablation(dataset, preset=preset, model="TNet"),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_ablation(results, dataset=dataset.upper()))

    strict = preset.name != "smoke"
    gan = _mean(results, "FS+GAN")
    ae = _mean(results, "FS+VanillaAE")
    assert_shape(
        gan >= ae - 0.01,
        "conditional GAN must lead the vanilla autoencoder",
        strict=strict,
    )
    # every strategy must be far above random for a 16-class / binary task
    floor = 2.0 / 16 if dataset == "5gc" else 0.4
    for method in ("FS+GAN", "FS+NoCond", "FS+VAE", "FS+VanillaAE"):
        assert_shape(
            _mean(results, method) > floor,
            f"{method} must beat the random floor",
            strict=strict,
        )
