"""§VI-D: running time of FS discovery, GAN training and per-sample inference.

The paper reports (P40 server, full datasets): FS ≈ 42/35 min, GAN training
≈ 12/7 min, inference ≈ 0.05 s per sample.  Absolute numbers scale with the
preset; the *ordering* — FS ≥ GAN training ≫ per-sample inference — is the
shape target, along with sub-second inference (the property that makes the
approach viable for real-time network management models).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import assert_shape
from repro.experiments import format_runtime, measure_runtime


@pytest.mark.parametrize("dataset", ["5gc", "5gipc"])
def test_runtime(benchmark, preset, dataset):
    result = benchmark.pedantic(
        lambda: measure_runtime(dataset, preset=preset, shots=max(preset.shots)),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_runtime(result))

    strict = preset.name != "smoke"
    per_sample = result["inference_seconds_per_sample"]
    assert per_sample < 0.5, "per-sample inference must be sub-second"
    assert_shape(
        result["gan_train_seconds"] > 100 * per_sample,
        "training must dwarf per-sample inference",
        strict=strict,
    )
    # FS cost is dominated by CI tests, linear in the feature count
    assert result["n_ci_tests"] >= result["n_features"]
