"""Table I (top): the full method × model × shots grid on the 5GC dataset.

Regenerates the paper's main table — 13 approaches, 4 downstream models,
{1, 5, 10} target shots — and prints it in the paper's layout, followed by
the drift-mitigation improvement summary behind the paper's 52% headline.

Shape targets (enforced at fast/paper presets): SrcOnly collapses; FS and
FS+GAN lead every baseline group; every few-shot method improves with shots.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import assert_shape
from repro.experiments import format_table1, run_table1, summarize_improvement


def _mean(results, method):
    return float(np.mean([c.f1_mean for c in results if c.method == method]))


def test_table1_5gc(benchmark, preset):
    results = benchmark.pedantic(
        lambda: run_table1("5gc", preset=preset), rounds=1, iterations=1
    )
    print()
    print(format_table1(results, dataset="5GC"))
    summary = summarize_improvement(results)
    print(
        f"\nFS+GAN gain over SrcOnly: {100 * summary['fsgan_gain']:.1f} F1 points; "
        f"best other ({summary['best_other']}): "
        f"{100 * summary['best_other_gain']:.1f} points; "
        f"relative drift-mitigation improvement: "
        f"{100 * summary['relative_improvement']:.0f}%"
    )

    strict = preset.name != "smoke"
    srconly = _mean(results, "srconly")
    fs = _mean(results, "fs")
    fsgan = _mean(results, "fs+gan")
    baselines = ("taronly", "s&t", "coral", "dann", "scl", "matchnet",
                 "protonet", "cmt", "icd", "fine-tune")
    best_baseline = max(_mean(results, m) for m in baselines)

    assert_shape(fs > srconly + 0.1, "FS must strongly beat SrcOnly", strict=strict)
    assert_shape(fsgan > srconly + 0.1, "FS+GAN must strongly beat SrcOnly", strict=strict)
    assert_shape(fs > best_baseline, "FS must lead every baseline", strict=strict)
    assert_shape(
        fsgan > best_baseline - 0.02,
        "FS+GAN must at least match the best baseline",
        strict=strict,
    )
    # few-shot methods improve with more target samples
    for method in ("taronly", "s&t", "cmt"):
        by_shots = [
            float(np.mean([c.f1_mean for c in results
                           if c.method == method and c.shots == s]))
            for s in preset.shots
        ]
        assert_shape(
            by_shots[-1] > by_shots[0],
            f"{method} must improve from {preset.shots[0]} to {preset.shots[-1]} shots",
            strict=strict,
        )
