"""Fig. 1: the three-stage pipeline walkthrough, timed per stage.

Exercises the framework diagram's contracts end-to-end on 5GC:

(a) FS separates features (variant set non-empty, partition exact);
(b) the conditional GAN trains on source blocks only;
(c) inference maps a target sample to a source-like sample — invariant
    features pass through untouched, variant features are regenerated into
    the source range — and the frozen source model consumes it.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import assert_shape
from repro.core import FSGANPipeline, ReconstructionConfig
from repro.experiments import make_benchmark, model_factories
from repro.ml import macro_f1


def test_fig1_pipeline(benchmark, preset):
    bench = make_benchmark("5gc", preset)
    X_few, _, X_test, y_test = bench.few_shot_split(5, random_state=0)
    factory = model_factories(preset)["MLP"]

    def run():
        pipe = FSGANPipeline(
            factory,
            reconstruction_config=ReconstructionConfig(
                epochs=preset.gan_epochs,
                hidden_size=preset.gan_hidden,
                noise_dim=preset.gan_noise_dim,
            ),
            random_state=0,
        )
        pipe.fit(bench.X_source, bench.y_source, X_few)
        return pipe

    pipe = benchmark.pedantic(run, rounds=1, iterations=1)

    # (a) separation contract
    n_var = pipe.n_variant_
    assert 0 < n_var < bench.n_features
    sep = pipe.separator_
    assert len(sep.variant_indices_) + len(sep.invariant_indices_) == bench.n_features

    # (c) inference contract
    X_hat = pipe.transform(X_test[:32])
    Xt = pipe.scaler_.transform(X_test[:32])
    np.testing.assert_array_equal(
        X_hat[:, sep.invariant_indices_], Xt[:, sep.invariant_indices_]
    )
    assert np.all(np.abs(X_hat[:, sep.variant_indices_]) <= 1.0)

    f1 = macro_f1(y_test, pipe.predict(X_test))
    srconly = macro_f1(y_test, pipe.model_.predict(pipe.scaler_.transform(X_test)))
    print(f"\nFig.1 pipeline: {n_var} variant features, "
          f"F1={100 * f1:.1f} vs SrcOnly={100 * srconly:.1f}")
    assert_shape(
        f1 > srconly,
        "the pipeline must beat the unadapted source model",
        strict=preset.name != "smoke",
    )
