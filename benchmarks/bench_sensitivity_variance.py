"""§VI-C sensitivity: F1 variance across random target-sample selections.

The paper reports FS / FS+GAN staying within ±2.6 F1 points over 20 random
selections.  This bench measures the spread over ``n_selections`` few-shot
draws (scaled with the preset's repeat budget).
"""

from __future__ import annotations

from benchmarks.conftest import assert_shape
from repro.experiments import selection_variance


def test_selection_variance_5gc(benchmark, preset):
    n_selections = max(3, preset.repeats)
    result = benchmark.pedantic(
        lambda: selection_variance(
            "5gc", preset=preset, model="TNet", shots=5, n_selections=n_selections
        ),
        rounds=1,
        iterations=1,
    )
    print()
    for method in ("fs", "fs+gan"):
        stats = result[method]
        print(
            f"{method:>7}: mean={100 * stats['mean']:5.1f} "
            f"std={100 * stats['std']:4.1f} range={100 * stats['range']:4.1f}"
        )

    strict = preset.name != "smoke"
    # ±2.6 in the paper → a full range of ~5 points; allow 2x at reduced scale
    assert_shape(
        result["fs"]["range"] < 0.12,
        "FS variance across selections must stay small",
        strict=strict,
    )
    assert_shape(
        result["fs+gan"]["range"] < 0.12,
        "FS+GAN variance across selections must stay small",
        strict=strict,
    )
