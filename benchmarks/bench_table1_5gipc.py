"""Table I (bottom): the full method × model × shots grid on 5GIPC.

Same grid as the 5GC bench, on the binary fault-detection dataset with its
paper-matched class imbalance.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import assert_shape
from repro.experiments import format_table1, run_table1, summarize_improvement


def _mean(results, method):
    return float(np.mean([c.f1_mean for c in results if c.method == method]))


def test_table1_5gipc(benchmark, preset):
    results = benchmark.pedantic(
        lambda: run_table1("5gipc", preset=preset), rounds=1, iterations=1
    )
    print()
    print(format_table1(results, dataset="5GIPC"))
    summary = summarize_improvement(results)
    print(
        f"\nFS+GAN gain over SrcOnly: {100 * summary['fsgan_gain']:.1f} F1 points; "
        f"best other ({summary['best_other']}): "
        f"{100 * summary['best_other_gain']:.1f} points"
    )

    strict = preset.name != "smoke"
    srconly = _mean(results, "srconly")
    fs = _mean(results, "fs")
    fsgan = _mean(results, "fs+gan")
    assert_shape(fs > srconly, "FS must beat SrcOnly on 5GIPC", strict=strict)
    assert_shape(fsgan > srconly, "FS+GAN must beat SrcOnly on 5GIPC", strict=strict)
