"""Table III: no-retraining robustness across two evolving target domains.

Regenerates the cross-adapter grid: a single TNet fault-detection model
trained only on Source; FS+GAN_1 / FS+GAN_2 adapters fitted per target;
every adapter evaluated on every target.

Shape targets (fast/paper): matched adapters beat SrcOnly on their targets;
crossed adapters remain competitive; the two adapters' variant sets overlap
substantially (the paper's explanation for the robustness).
"""

from __future__ import annotations

from benchmarks.conftest import assert_shape
from repro.experiments import format_multitarget, run_multitarget


def test_table3_multitarget(benchmark, preset):
    result = benchmark.pedantic(
        lambda: run_multitarget(preset=preset, model="TNet"), rounds=1, iterations=1
    )
    print()
    print(format_multitarget(result))

    strict = preset.name != "smoke"
    scores = result["scores"]
    top_shots = max(preset.shots)
    matched_1 = scores[(1, 1, top_shots)]
    matched_2 = scores[(2, 2, top_shots)]
    crossed_12 = scores[(1, 2, top_shots)]
    crossed_21 = scores[(2, 1, top_shots)]

    assert_shape(matched_1 > 0.5, "matched adapter 1 must perform well", strict=strict)
    assert_shape(matched_2 > 0.5, "matched adapter 2 must perform well", strict=strict)
    # crossed adapters stay competitive: within 15 F1 points of matched
    assert_shape(
        crossed_12 > matched_2 - 0.15,
        "adapter 1 must stay competitive on target 2",
        strict=strict,
    )
    assert_shape(
        crossed_21 > matched_1 - 0.15,
        "adapter 2 must stay competitive on target 1",
        strict=strict,
    )
    assert_shape(
        result["overlap"] > 0.3,
        "the adapters' variant sets must overlap substantially",
        strict=strict,
    )
