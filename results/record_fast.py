"""Record fast-preset results for EXPERIMENTS.md."""
import sys, time
from dataclasses import replace
from repro.experiments import (PRESETS, run_table1, run_ablation, format_table1,
                               format_ablation, summarize_improvement,
                               variant_counts, format_variant_counts,
                               measure_runtime, format_runtime,
                               run_multitarget, format_multitarget)

preset = replace(PRESETS["fast"], repeats=2)
t0 = time.time()

def log(*args):
    print(*args, flush=True)

for dataset in ("5gc", "5gipc"):
    results = run_table1(dataset, preset=preset)
    log(format_table1(results, dataset=dataset.upper()))
    s = summarize_improvement(results)
    log(f"summary: srconly={100*s['srconly_f1']:.1f} fs+gan={100*s['fsgan_f1']:.1f} "
        f"best_other={s['best_other']}({100*s['best_other_f1']:.1f}) "
        f"gain_ours={100*s['fsgan_gain']:.1f} gain_other={100*s['best_other_gain']:.1f} "
        f"rel_improvement={100*s['relative_improvement']:.0f}%")
    log(f"[elapsed {time.time()-t0:.0f}s]\n")

ab = run_ablation("5gc", preset=preset, model="TNet")
log(format_ablation(ab, dataset="5GC"))
log(f"[elapsed {time.time()-t0:.0f}s]\n")

for dataset in ("5gc", "5gipc"):
    vc = variant_counts(dataset, preset=preset)
    log(format_variant_counts(vc))
    rt = measure_runtime(dataset, preset=preset, shots=10)
    log(format_runtime(rt))
    log("")

mt = run_multitarget(preset=replace(preset, repeats=1), model="TNet")
log(format_multitarget(mt))
log(f"[total {time.time()-t0:.0f}s]")
